//! The threaded daemon–agent runtime.
//!
//! The paper's daemons "work as independent processes" (§IV-C); this module
//! gives the reproduction real concurrency instead of a single-threaded
//! simulation of it:
//!
//! * [`DaemonHandle`] runs one [`Daemon`] on its own OS worker thread for the
//!   whole lifetime of a run (runtime isolation: the device context is
//!   created once and stays alive across iterations).  Work is submitted as
//!   jobs over the `Send + Sync` queue of `gxplug-ipc`; [`DaemonHandle::join`]
//!   recovers the daemon — or the panic payload if a kernel panicked.
//! * [`ThreadedAgent`] is the threaded front-end of the agent: it plans an
//!   iteration exactly like the serial [`Agent`](crate::Agent) (same
//!   download/cache/merge/upload/timing code via `AgentCore`), but dispatches
//!   every daemon's capacity share as a job and only then collects the
//!   results — so all daemons of a node genuinely compute concurrently, the
//!   overlap the §III pipeline shuffle is designed around.
//! * [`ThreadedNodes`] is the cluster-level
//!   [`ComputePhase`](gxplug_engine::cluster::ComputePhase): one scoped
//!   thread per distributed node per superstep, joined in node order at the
//!   BSP barrier.
//!
//! Zero-copy dispatch: a share job does not move an owned `Vec<Triplet>` to
//! the worker.  The iteration's triplets live in one reusable
//! [`TripletBuffer`](gxplug_graph::view::TripletBuffer) behind an `Arc`; the
//! job carries a cheap `Arc` handle plus an index range and reads its share
//! *in place*.  Generated messages travel back in the daemon's pooled reply
//! buffer, which the agent re-issues (cleared, never reallocated) on the next
//! iteration.  By collection time the `Arc` is uniquely held again, so the
//! next refill needs no new allocation either.
//!
//! Determinism: shares are split, dispatched and collected in daemon-index
//! order, and node outputs are joined in node order, so a threaded run
//! produces bit-identical results to a serial run (covered by the
//! `determinism` integration test).
//!
//! Worker threads are *scoped* (`std::thread::scope`), which is what lets
//! jobs borrow the algorithm and the iteration's data without `'static`
//! bounds or reference counting; the scope guarantees every worker is joined
//! before the borrowed data goes away.

use crate::agent::{dense_merge, split_by_capacity_into, AgentCore, AgentScratch, ShareRun};
use crate::config::MiddlewareConfig;
use crate::daemon::{execute_share, Daemon, DaemonInfo, DaemonStats};
use crate::metrics::AgentStats;
use gxplug_accel::{AccelError, SimDuration};
use gxplug_engine::cluster::{ComputePhase, NodeComputeOutput};
use gxplug_engine::node::NodeState;
use gxplug_engine::profile::RuntimeProfile;
use gxplug_engine::template::{AddressedMessage, GraphAlgorithm};
use gxplug_graph::types::PartitionId;
use gxplug_graph::view::TripletBuffer;
use gxplug_ipc::queue::{sync_queue, QueueSender};
use std::fmt;
use std::panic::resume_unwind;
use std::sync::{mpsc, Arc};
use std::thread::{Scope, ScopedJoinHandle};

/// Errors surfaced by the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The daemon's worker thread is no longer accepting work (it panicked or
    /// was shut down).
    DaemonStopped {
        /// Name of the unavailable daemon.
        name: String,
    },
    /// A device kernel rejected its block (e.g. the block exceeded device
    /// memory).  The error aborts the run with a typed failure instead of
    /// panicking the process.
    Kernel {
        /// Name of the daemon whose device rejected the block.
        daemon: String,
        /// The device-level error.
        error: AccelError,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DaemonStopped { name } => {
                write!(f, "daemon '{name}' has stopped and no longer accepts work")
            }
            RuntimeError::Kernel { daemon, error } => {
                write!(f, "daemon '{daemon}' kernel failed: {error}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A unit of work executed on a daemon's worker thread.
pub type DaemonJob<'env> = Box<dyn FnOnce(&mut Daemon) + Send + 'env>;

/// A [`Daemon`] running on its own OS worker thread.
///
/// The worker owns the daemon for the duration of the enclosing
/// [`std::thread::scope`]; the handle keeps a [`DaemonInfo`] snapshot so
/// agents can plan (capacity split, block sizing, timing) without crossing
/// the thread boundary.  Lifecycle:
///
/// 1. [`DaemonHandle::spawn`] moves the daemon onto a new worker thread;
/// 2. [`DaemonHandle::submit`] enqueues fire-and-forget jobs,
///    [`DaemonHandle::call`] runs a job and blocks for its result;
/// 3. [`DaemonHandle::join`] closes the job queue, joins the worker and
///    returns the daemon (or the panic payload of a job that panicked).
///
/// Panic safety: a panicking job unwinds its worker thread, which drops the
/// job queue receiver.  Pending [`DaemonHandle::call`]s then observe the
/// disconnect and return [`RuntimeError::DaemonStopped`] instead of hanging,
/// and [`DaemonHandle::join`] yields `Err(payload)` so the panic can be
/// propagated with [`std::panic::resume_unwind`].
#[derive(Debug)]
pub struct DaemonHandle<'scope, 'env> {
    info: DaemonInfo,
    jobs: QueueSender<DaemonJob<'env>>,
    worker: ScopedJoinHandle<'scope, Daemon>,
}

impl<'scope, 'env> DaemonHandle<'scope, 'env> {
    /// Moves `daemon` onto a new worker thread spawned on `scope`.
    pub fn spawn(scope: &'scope Scope<'scope, 'env>, daemon: Daemon) -> Self {
        let info = daemon.info();
        let (jobs, job_rx) = sync_queue::<DaemonJob<'env>>();
        let worker = scope.spawn(move || {
            let mut daemon = daemon;
            // The loop ends when every sender is dropped (normal shutdown) —
            // or by unwinding out of a panicking job, in which case `job_rx`
            // is dropped mid-loop and waiting callers observe the disconnect.
            while let Ok(job) = job_rx.recv() {
                job(&mut daemon);
            }
            daemon
        });
        Self { info, jobs, worker }
    }

    /// The planning metadata snapshot of the daemon.
    pub fn info(&self) -> &DaemonInfo {
        &self.info
    }

    /// Enqueues a job without waiting for it.
    pub fn submit(&self, job: impl FnOnce(&mut Daemon) + Send + 'env) -> Result<(), RuntimeError> {
        self.jobs
            .send(Box::new(job))
            .map_err(|_| RuntimeError::DaemonStopped {
                name: self.info.name().to_string(),
            })
    }

    /// Runs `f` on the daemon thread and blocks until its result arrives.
    pub fn call<R, F>(&self, f: F) -> Result<R, RuntimeError>
    where
        R: Send + 'env,
        F: FnOnce(&mut Daemon) -> R + Send + 'env,
    {
        let (reply_tx, reply_rx) = mpsc::channel::<R>();
        self.submit(move |daemon| {
            let _ = reply_tx.send(f(daemon));
        })?;
        reply_rx.recv().map_err(|_| RuntimeError::DaemonStopped {
            name: self.info.name().to_string(),
        })
    }

    /// Cumulative statistics of the daemon (a blocking round-trip).
    pub fn stats(&self) -> Result<DaemonStats, RuntimeError> {
        self.call(|daemon| daemon.stats())
    }

    /// Closes the job queue and joins the worker, returning the daemon, or
    /// the panic payload of the job that killed the worker.
    pub fn join(self) -> std::thread::Result<Daemon> {
        let DaemonHandle { jobs, worker, .. } = self;
        drop(jobs);
        worker.join()
    }
}

/// What a share job sends back: the daemon's pooled message buffer (always
/// returned, so its capacity survives failed iterations) plus the number of
/// blocks launched or the error that aborted the share.
type ShareReply<M> = (Vec<AddressedMessage<M>>, Result<usize, RuntimeError>);

/// The reusable per-daemon reply channel pair of a [`ThreadedAgent`].
type ReplyChannel<M> = (mpsc::Sender<ShareReply<M>>, mpsc::Receiver<ShareReply<M>>);

/// Guarantees a share job *always* replies, even if it unwinds: the reply
/// channels are long-lived (the agent keeps a sender for the next
/// iteration), so a dead worker would otherwise leave the agent blocked on
/// `recv` forever.  A panicking job drops the guard, which reports
/// [`RuntimeError::DaemonStopped`]; the agent turns that into the documented
/// "daemon died while computing its share" panic, and the worker's own panic
/// payload resurfaces at join.
struct ReplyGuard<M> {
    tx: Option<mpsc::Sender<ShareReply<M>>>,
    daemon: String,
}

impl<M> ReplyGuard<M> {
    fn new(tx: mpsc::Sender<ShareReply<M>>, daemon: String) -> Self {
        Self {
            tx: Some(tx),
            daemon,
        }
    }

    fn reply(mut self, reply: ShareReply<M>) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(reply);
        }
    }
}

impl<M> Drop for ReplyGuard<M> {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send((
                Vec::new(),
                Err(RuntimeError::DaemonStopped {
                    name: std::mem::take(&mut self.daemon),
                }),
            ));
        }
    }
}

/// The threaded front-end of an agent: same planning and bookkeeping as the
/// serial [`Agent`](crate::Agent), with every daemon behind a
/// [`DaemonHandle`] so capacity shares execute concurrently.
///
/// Like the serial agent it is generic over the message type `M` of the
/// algorithm it serves, which lets it pool the per-daemon reply buffers and
/// reply channels across iterations.
#[derive(Debug)]
pub struct ThreadedAgent<'scope, 'env, V, E, M> {
    core: AgentCore<V>,
    handles: Vec<DaemonHandle<'scope, 'env>>,
    /// Capacity factors of the daemons, captured once (they are static).
    capacities: Vec<f64>,
    scratch: AgentScratch<V, E, M>,
    /// One long-lived reply channel per daemon, reused every iteration.
    replies: Vec<ReplyChannel<M>>,
}

impl<'scope, 'env, V, E, M> ThreadedAgent<'scope, 'env, V, E, M>
where
    V: Clone + PartialEq + Send + Sync + 'env,
    E: Clone + Send + Sync + 'env,
    M: Clone + Send + Sync + 'env,
{
    /// Creates the agent for distributed node `node_id` and spawns one worker
    /// thread per daemon on `scope`.
    pub fn spawn(
        scope: &'scope Scope<'scope, 'env>,
        node_id: PartitionId,
        daemons: Vec<Daemon>,
        profile: RuntimeProfile,
        config: MiddlewareConfig,
        local_vertices: usize,
    ) -> Self {
        assert!(!daemons.is_empty(), "an agent needs at least one daemon");
        let handles: Vec<DaemonHandle<'scope, 'env>> = daemons
            .into_iter()
            .map(|daemon| DaemonHandle::spawn(scope, daemon))
            .collect();
        let capacities: Vec<f64> = handles
            .iter()
            .map(|handle| handle.info().capacity_factor())
            .collect();
        let scratch = AgentScratch::new(handles.len());
        let replies = (0..handles.len()).map(|_| mpsc::channel()).collect();
        Self {
            core: AgentCore::new(node_id, profile, config, local_vertices),
            handles,
            capacities,
            scratch,
            replies,
        }
    }

    /// The distributed node this agent serves.
    pub fn node_id(&self) -> PartitionId {
        self.core.node_id()
    }

    /// Number of attached daemons.
    pub fn num_daemons(&self) -> usize {
        self.handles.len()
    }

    /// Planning metadata of the attached daemons.
    pub fn daemon_infos(&self) -> Vec<&DaemonInfo> {
        self.handles.iter().map(DaemonHandle::info).collect()
    }

    /// Total computation capacity factor of the attached daemons.
    pub fn capacity_factor(&self) -> f64 {
        self.capacities.iter().sum()
    }

    /// The middleware configuration in force.
    pub fn config(&self) -> &MiddlewareConfig {
        self.core.config()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> AgentStats {
        self.core.stats()
    }

    /// Installs a pooled triplet arena (e.g. the session's, so a reused
    /// session keeps one warm buffer per node across runs).
    pub fn install_triplet_buffer(&mut self, buffer: Arc<TripletBuffer<V, E>>) {
        self.scratch.install_triplets(buffer);
    }

    /// Takes the triplet arena back (returning a fresh empty one to the
    /// agent), so the session can pool it for the next run.
    pub fn take_triplet_buffer(&mut self) -> Arc<TripletBuffer<V, E>> {
        self.scratch
            .install_triplets(Arc::new(TripletBuffer::new()))
    }

    /// `connect()`: initialises every daemon's device context, concurrently
    /// across the worker threads, once per run (runtime isolation).  Returns
    /// the summed initialisation time.
    pub fn connect(&mut self) -> SimDuration {
        let replies: Vec<_> = self
            .handles
            .iter()
            .map(|handle| {
                let (tx, rx) = mpsc::channel::<SimDuration>();
                handle
                    .submit(move |daemon| {
                        let _ = tx.send(daemon.start());
                    })
                    .expect("daemon worker alive during connect");
                rx
            })
            .collect();
        let mut total = SimDuration::ZERO;
        for (handle, reply) in self.handles.iter().zip(replies) {
            total += reply.recv().unwrap_or_else(|_| {
                panic!("daemon '{}' died during connect", handle.info().name())
            });
        }
        self.core.record_init_time(total);
        total
    }

    /// `disconnect()`: shuts every daemon down (device contexts torn down on
    /// the worker threads; the workers stay alive until [`Self::join`]).
    pub fn disconnect(&mut self) {
        for handle in &self.handles {
            let _ = handle.call(|daemon| daemon.shutdown());
        }
    }

    /// Executes one middleware iteration for this agent's node: plans the
    /// download and the capacity shares, dispatches every share — a borrowed
    /// view into the iteration's triplet buffer — to its daemon's worker
    /// thread, then collects the results in daemon order and finishes the
    /// merge/upload/timing phases.
    ///
    /// # Errors
    /// [`RuntimeError::Kernel`] if a device rejects a block, or
    /// [`RuntimeError::DaemonStopped`] if a worker is gone at dispatch time.
    /// Every dispatched share is still collected before the error is
    /// returned, so the pooled buffers stay consistent.
    ///
    /// # Panics
    /// Panics if a daemon worker dies (panics) while computing its share (the
    /// panic then propagates to the run through the cluster driver's join).
    pub fn process_iteration<A>(
        &mut self,
        node: &mut NodeState<V, E>,
        algorithm: &'env A,
        iteration: usize,
    ) -> Result<NodeComputeOutput<V, M>, RuntimeError>
    where
        A: GraphAlgorithm<V, E, Msg = M>,
    {
        let plan = match self.core.begin_iteration(node, iteration) {
            Some(plan) => plan,
            None => return Ok(NodeComputeOutput::idle()),
        };

        // ---- compute phase: dispatch every share, then collect -----------
        let buffer = Arc::get_mut(&mut self.scratch.triplets)
            .expect("no triplet share views outstanding between iterations");
        node.fill_triplets(self.core.active_edge_ids(), buffer);
        let d = self.scratch.triplets.len();
        split_by_capacity_into(d, &self.capacities, &mut self.scratch.shares);
        self.scratch.share_runs.clear();
        self.scratch.dispatched.clear();
        let mut dispatch_failure: Option<RuntimeError> = None;
        for (daemon_index, range) in self.scratch.shares.iter().enumerate() {
            if range.is_empty() {
                continue;
            }
            let handle = &self.handles[daemon_index];
            let coefficients = handle.info().coefficients(self.core.profile());
            let share_len = range.len();
            let block_size = self.core.block_size_for(
                &coefficients,
                share_len,
                handle.info().memory_capacity_items(),
            );
            let view = Arc::clone(&self.scratch.triplets);
            let range = range.clone();
            let mut out = std::mem::take(&mut self.scratch.msg_bufs[daemon_index]);
            let reply_tx = self.replies[daemon_index].0.clone();
            let submitted = handle.submit(move |daemon| {
                let guard = ReplyGuard::new(reply_tx, daemon.name().to_string());
                out.clear();
                let result = execute_share(
                    daemon,
                    algorithm,
                    view.share(range),
                    block_size,
                    iteration,
                    &mut out,
                );
                // Release the share view BEFORE replying: the agent treats
                // the reply as "this share is done" and may refill the
                // triplet arena for the next iteration immediately, which
                // requires the arena to be uniquely held again.
                drop(view);
                guard.reply((out, result));
            });
            match submitted {
                Ok(()) => {
                    self.scratch.dispatched.push(daemon_index);
                    self.scratch.share_runs.push(ShareRun {
                        coefficients,
                        share_len,
                        block_size,
                        blocks: 0,
                    });
                }
                Err(error) => {
                    // The worker is gone; stop dispatching, but still collect
                    // what is already in flight below.
                    dispatch_failure = Some(error);
                    break;
                }
            }
        }
        // Collect in daemon-index order (the dispatch order), which keeps the
        // raw message order — and therefore the merge — identical to the
        // serial agent's.  Every dispatched share is collected even when one
        // of them fails, so the buffer pool and the triplet arena come back.
        let mut first_error: Option<RuntimeError> = dispatch_failure;
        for slot in 0..self.scratch.dispatched.len() {
            let daemon_index = self.scratch.dispatched[slot];
            let died = || {
                panic!(
                    "daemon '{}' died while computing its share",
                    self.handles[daemon_index].info().name()
                )
            };
            match self.replies[daemon_index].1.recv() {
                Ok((out, result)) => {
                    // The pooled buffer always comes back, so its capacity
                    // survives even a failed iteration.
                    self.scratch.msg_bufs[daemon_index] = out;
                    match result {
                        Ok(blocks) => self.scratch.share_runs[slot].blocks = blocks,
                        // A DaemonStopped reply from inside a job is the
                        // ReplyGuard reporting that the job unwound.
                        Err(RuntimeError::DaemonStopped { .. }) => died(),
                        Err(error) => {
                            if first_error.is_none() {
                                first_error = Some(error);
                            }
                        }
                    }
                }
                Err(_) => died(),
            }
        }
        if let Some(error) = first_error {
            for buf in &mut self.scratch.msg_bufs {
                buf.clear();
            }
            return Err(error);
        }

        // ---- merge phase (MSGMerge, into pooled dense slots) ----------------
        let AgentScratch {
            msg_bufs,
            merge,
            overflow,
            ..
        } = &mut self.scratch;
        let raw = msg_bufs.iter_mut().flat_map(|buf| buf.drain(..));
        let merged = dense_merge(node, algorithm, raw, merge, overflow);
        Ok(self
            .core
            .finish_iteration(node, &plan, merged, &self.scratch.share_runs))
    }

    /// Joins every daemon worker, returning the daemons.  Re-raises the panic
    /// of any worker that died from a panicking job.
    pub fn join(self) -> Vec<Daemon> {
        self.handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(daemon) => daemon,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    }
}

/// Cluster-level compute phase running one scoped thread per distributed
/// node, each driving that node's [`ThreadedAgent`].
///
/// Outputs are joined in node order, so the global synchronisation sees the
/// same message order as with the serial driver.  A per-node error (e.g. a
/// rejected kernel block) aborts the superstep: every node is still joined,
/// then the first error in node order is reported.
pub struct ThreadedNodes<'agents, 'scope, 'env, V, E, A>
where
    A: GraphAlgorithm<V, E>,
{
    /// One threaded agent per node, in node order.
    pub agents: &'agents mut [ThreadedAgent<'scope, 'env, V, E, A::Msg>],
    /// The algorithm being executed.
    pub algorithm: &'env A,
}

impl<'agents, 'scope, 'env, V, E, A> ComputePhase<V, E, A::Msg>
    for ThreadedNodes<'agents, 'scope, 'env, V, E, A>
where
    V: Clone + PartialEq + Send + Sync + 'env,
    E: Clone + Send + Sync + 'env,
    A: GraphAlgorithm<V, E>,
    A::Msg: 'env,
{
    type Error = RuntimeError;

    fn compute(
        &mut self,
        nodes: &mut [NodeState<V, E>],
        iteration: usize,
    ) -> Result<Vec<NodeComputeOutput<V, A::Msg>>, RuntimeError> {
        assert_eq!(
            nodes.len(),
            self.agents.len(),
            "one threaded agent per node is required"
        );
        let algorithm = self.algorithm;
        std::thread::scope(|scope| {
            let handles: Vec<_> = nodes
                .iter_mut()
                .zip(self.agents.iter_mut())
                .map(|(node, agent)| {
                    scope.spawn(move || agent.process_iteration(node, algorithm, iteration))
                })
                .collect();
            // Join every node before reporting, so an error does not leave
            // stragglers computing into the next superstep.
            let results: Vec<Result<NodeComputeOutput<V, A::Msg>, RuntimeError>> = handles
                .into_iter()
                .map(|handle| match handle.join() {
                    Ok(result) => result,
                    Err(payload) => resume_unwind(payload),
                })
                .collect();
            results.into_iter().collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gxplug_accel::presets;
    use gxplug_ipc::key::KeyGenerator;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    fn daemon(index: usize) -> Daemon {
        let key = KeyGenerator::new(9).key_for(0, index);
        Daemon::new(
            format!("d{index}"),
            presets::cpu_xeon_20c(format!("c{index}")),
            key,
        )
    }

    #[test]
    fn spawn_submit_join_lifecycle() {
        let counter = AtomicUsize::new(0);
        let returned = thread::scope(|scope| {
            let handle = DaemonHandle::spawn(scope, daemon(0));
            assert_eq!(handle.info().name(), "d0");
            for _ in 0..10 {
                handle
                    .submit(|_daemon| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    })
                    .unwrap();
            }
            let started = handle.call(|daemon| daemon.start()).unwrap();
            assert!(started > SimDuration::ZERO);
            handle.join().expect("no job panicked")
        });
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert!(returned.is_started());
    }

    #[test]
    fn jobs_run_on_a_different_thread_and_borrow_locals() {
        let main_thread = thread::current().id();
        // Declared outside the scope, borrowed by jobs inside it — the scoped
        // runtime needs no 'static bounds.
        let data = [1u64, 2, 3];
        let mut observed = Vec::new();
        thread::scope(|scope| {
            let handle = DaemonHandle::spawn(scope, daemon(0));
            let worker_thread = handle.call(|_d| thread::current().id()).unwrap();
            assert_ne!(worker_thread, main_thread);
            let sum = handle.call(|_d| data.iter().sum::<u64>()).unwrap();
            observed.push(sum);
            handle.join().unwrap();
        });
        assert_eq!(observed, vec![6]);
    }

    #[test]
    fn panicking_job_surfaces_through_join_and_stops_the_worker() {
        thread::scope(|scope| {
            let handle = DaemonHandle::spawn(scope, daemon(0));
            handle
                .submit(|_daemon| panic!("kernel exploded"))
                .expect("worker was alive at submit time");
            // The worker dies; a blocking call must error, not hang.
            let mut saw_stop = false;
            for _ in 0..50 {
                match handle.call(|d| d.stats()) {
                    Err(RuntimeError::DaemonStopped { name }) => {
                        assert_eq!(name, "d0");
                        saw_stop = true;
                        break;
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                    Ok(_) => thread::sleep(Duration::from_millis(5)),
                }
            }
            assert!(saw_stop, "worker kept accepting work after a panic");
            let payload = handle.join().expect_err("join must surface the panic");
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("<non-str payload>");
            assert_eq!(message, "kernel exploded");
        });
    }

    #[test]
    fn kernel_errors_propagate_across_the_worker_boundary() {
        use gxplug_engine::template::AddressedMessage;
        use gxplug_graph::types::{Triplet, VertexId};

        struct Echo;
        impl GraphAlgorithm<f64, f64> for Echo {
            type Msg = f64;
            fn init_vertex(&self, _v: VertexId, _d: usize) -> f64 {
                0.0
            }
            fn msg_gen(&self, t: &Triplet<f64, f64>, _i: usize) -> Vec<AddressedMessage<f64>> {
                vec![AddressedMessage::new(t.dst, t.src_attr)]
            }
            fn msg_merge(&self, a: f64, _b: f64) -> f64 {
                a
            }
            fn msg_apply(&self, _v: VertexId, _c: &f64, m: &f64, _i: usize) -> Option<f64> {
                Some(*m)
            }
            fn name(&self) -> &'static str {
                "echo"
            }
        }

        let key = KeyGenerator::new(9).key_for(1, 0);
        let gpu = Daemon::new("g0", presets::gpu_v100("g0"), key);
        thread::scope(|scope| {
            let handle = DaemonHandle::spawn(scope, gpu);
            let result = handle
                .call(|daemon| {
                    daemon.start();
                    let triplets = vec![
                        Triplet::new(0u32, 1u32, 0.0f64, 0.0f64, 1.0f64);
                        presets::GPU_MEMORY_ITEMS + 1
                    ];
                    let mut out = Vec::new();
                    execute_share(daemon, &Echo, &triplets, triplets.len(), 0, &mut out)
                })
                .expect("worker alive");
            // The device error crossed the thread boundary as a typed value,
            // not a panic: the worker is still serving jobs afterwards.
            match result {
                Err(RuntimeError::Kernel { daemon, error }) => {
                    assert_eq!(daemon, "g0");
                    assert!(matches!(error, AccelError::OutOfMemory { .. }));
                }
                other => panic!("expected a kernel error, got {other:?}"),
            }
            assert!(handle.stats().is_ok());
            handle.join().expect("worker survived the kernel error");
        });
    }

    #[test]
    fn panicking_kernel_job_panics_the_agent_instead_of_hanging() {
        use gxplug_engine::template::AddressedMessage;
        use gxplug_graph::edge_list::EdgeList;
        use gxplug_graph::graph::PropertyGraph;
        use gxplug_graph::partition::{HashEdgePartitioner, Partitioner};
        use gxplug_graph::types::{Triplet, VertexId};
        use std::panic::AssertUnwindSafe;

        struct Bomb;
        impl GraphAlgorithm<f64, f64> for Bomb {
            type Msg = f64;
            fn init_vertex(&self, _v: VertexId, _d: usize) -> f64 {
                0.0
            }
            fn msg_gen(&self, _t: &Triplet<f64, f64>, _i: usize) -> Vec<AddressedMessage<f64>> {
                panic!("user kernel exploded")
            }
            fn msg_merge(&self, a: f64, _b: f64) -> f64 {
                a
            }
            fn msg_apply(&self, _v: VertexId, _c: &f64, m: &f64, _i: usize) -> Option<f64> {
                Some(*m)
            }
            fn name(&self) -> &'static str {
                "bomb"
            }
        }
        static BOMB: Bomb = Bomb;

        let list: EdgeList<f64> = [(0u32, 1u32, 1.0f64), (1, 2, 1.0)].into_iter().collect();
        let graph = PropertyGraph::from_edge_list(list, 0.0).unwrap();
        let partitioning = HashEdgePartitioner::new(0).partition(&graph, 1).unwrap();
        // The reply channels are long-lived, so without the ReplyGuard a
        // worker that unwinds mid-share would leave the agent blocked on
        // recv forever; this must surface as a panic instead.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            thread::scope(|scope| {
                let mut agent: ThreadedAgent<'_, '_, f64, f64, f64> = ThreadedAgent::spawn(
                    scope,
                    0,
                    vec![daemon(0)],
                    RuntimeProfile::powergraph(),
                    MiddlewareConfig::default(),
                    8,
                );
                agent.connect();
                let mut node = NodeState::build(0, &graph, &partitioning, &BOMB);
                let _ = agent.process_iteration(&mut node, &BOMB, 0);
            });
        }));
        assert!(result.is_err(), "the dead worker must panic the run");
    }

    #[test]
    fn kernel_errors_render_their_daemon_and_cause() {
        let error = RuntimeError::Kernel {
            daemon: "node0-daemon1".to_string(),
            error: AccelError::OutOfMemory {
                requested: 10,
                capacity: 5,
                device: "g".to_string(),
            },
        };
        let rendered = error.to_string();
        assert!(rendered.contains("node0-daemon1"));
        assert!(rendered.contains("out of device memory"));
    }

    #[test]
    fn threaded_agent_requires_a_daemon() {
        let result = std::panic::catch_unwind(|| {
            thread::scope(|scope| {
                let agent: ThreadedAgent<'_, '_, f64, f64, f64> = ThreadedAgent::spawn(
                    scope,
                    0,
                    Vec::new(),
                    RuntimeProfile::powergraph(),
                    MiddlewareConfig::default(),
                    8,
                );
                drop(agent);
            });
        });
        assert!(result.is_err());
    }
}
