//! The session API: deploy once, run many times.
//!
//! GX-Plug's central claim is that accelerators are *plugged in* as
//! long-lived daemons that an upper system attaches to — so the public API
//! separates the *deployed system* from the *submitted job*, the way GraphX
//! separates a graph from the queries run against it:
//!
//! * [`SessionBuilder`] describes a deployment fluently (graph, partitioning,
//!   upper-system profile, network, plugged devices, middleware
//!   configuration) and validates it with typed [`SessionError`]s instead of
//!   panics deep inside the runner;
//! * [`Session::run`] / [`Session::run_native`] submit one algorithm run to
//!   the deployed cluster.  Repeated runs — parameter sweeps, multi-algorithm
//!   serving, benchmarks — reuse the deployed graph, partitioning metadata
//!   and daemon device contexts: the cluster is built once and *reset*
//!   between runs ([`Cluster::reset_for`]), and the daemons stay connected,
//!   so every accelerated run after the first accelerated one reports
//!   `setup == 0` (native runs never touch the daemons).
//!
//! Per-run middleware state (agent caches, statistics, the edge-topology
//! registration) is created fresh for every run, which keeps a reused
//! session **bit-identical** to a sequence of one-shot runs — the only
//! difference is the amortised deployment cost (device initialisation and
//! host-side cluster construction).  The `determinism` integration test
//! checks this exactly.
//!
//! [`MiddlewareConfig::execution`] still selects the runtime per run: in the
//! default [`ExecutionMode::Threaded`], every daemon computes on its own
//! worker thread ([`crate::runtime::DaemonHandle`]) and every node's compute
//! phase runs on its own scoped thread per superstep
//! ([`crate::runtime::ThreadedNodes`]); [`ExecutionMode::Serial`] drives the
//! same logic on the calling thread.  The two modes produce bit-identical
//! results, and [`Session::set_config`] can switch any middleware knob
//! between runs on the same deployment (ablations without re-deploying).

use crate::agent::Agent;
use crate::config::{ExecutionMode, MiddlewareConfig};
use crate::daemon::Daemon;
use crate::metrics::AgentStats;
use crate::runtime::{RuntimeError, ThreadedAgent, ThreadedNodes};
use gxplug_accel::{AcceleratorBackend, BackendKind, DeviceKind, DeviceSpec, SimDuration};
use gxplug_engine::cluster::{Cluster, ComputePhase, NodeComputeOutput, SyncPolicy};
use gxplug_engine::metrics::RunReport;
use gxplug_engine::network::NetworkModel;
use gxplug_engine::node::NodeState;
use gxplug_engine::profile::RuntimeProfile;
use gxplug_engine::template::GraphAlgorithm;
use gxplug_graph::graph::PropertyGraph;
use gxplug_graph::mutate::{MutationScope, ResolvedMutation};
use gxplug_graph::partition::Partitioning;
use gxplug_graph::view::{TripletBuffer, ViewStats};
use gxplug_ipc::key::KeyGenerator;
use std::fmt;
use std::sync::Arc;
use std::thread;

/// Iteration cap used when [`SessionBuilder::max_iterations`] is not called.
pub const DEFAULT_MAX_ITERATIONS: usize = 10_000;

/// The outcome of an accelerated (or native) run.
#[derive(Debug, Clone)]
pub struct RunOutcome<V> {
    /// The cluster-level report (iterations, timing, convergence).
    pub report: RunReport,
    /// Per-agent middleware statistics (empty for native runs).
    pub agent_stats: Vec<AgentStats>,
    /// The final vertex values collected from the master copies.
    pub values: Vec<V>,
}

/// Typed validation errors of the session API.
///
/// These replace the panics (and silent misconfigurations) of the legacy
/// free-function runners: a deployment that cannot work is rejected at
/// [`SessionBuilder::build`] time with a description of what is wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The builder was never given a partitioning
    /// ([`SessionBuilder::partitioned_by`]).
    MissingPartitioning,
    /// `devices_per_node` does not have exactly one device list per
    /// partition of the deployed graph.
    DeviceCountMismatch {
        /// Number of partitions (distributed nodes) in the deployment.
        partitions: usize,
        /// Number of per-node device lists supplied.
        device_lists: usize,
    },
    /// A node's device list is empty — every node of an accelerated
    /// deployment needs at least one device to plug in.
    EmptyDeviceList {
        /// The node whose device list is empty.
        node: usize,
    },
    /// [`Session::run`] was called on a session deployed without devices
    /// (use [`Session::run_native`], or rebuild with
    /// [`SessionBuilder::devices`]).
    NoDevices,
    /// The run aborted with a middleware runtime error (e.g. a device kernel
    /// rejected a block).  The session itself stays usable: the daemons were
    /// recovered, so a corrected configuration can be submitted next.
    Runtime(RuntimeError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::MissingPartitioning => {
                write!(
                    f,
                    "the session needs a partitioning (SessionBuilder::partitioned_by)"
                )
            }
            SessionError::DeviceCountMismatch {
                partitions,
                device_lists,
            } => write!(
                f,
                "one device list per distributed node is required: \
                 the partitioning has {partitions} parts but {device_lists} device lists were given"
            ),
            SessionError::EmptyDeviceList { node } => write!(
                f,
                "node {node} has an empty device list: every node of an accelerated \
                 deployment needs at least one device"
            ),
            SessionError::NoDevices => write!(
                f,
                "the session was deployed without devices; plug devices in with \
                 SessionBuilder::devices or use Session::run_native"
            ),
            SessionError::Runtime(error) => write!(f, "the run aborted: {error}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Runtime(error) => Some(error),
            _ => None,
        }
    }
}

impl From<RuntimeError> for SessionError {
    fn from(error: RuntimeError) -> Self {
        SessionError::Runtime(error)
    }
}

/// Builds a human-readable system label such as `"PowerGraph+GPU"` from the
/// device specs plugged into each node.
pub fn system_label(profile: &RuntimeProfile, devices_per_node: &[Vec<DeviceSpec>]) -> String {
    let mut has_gpu = false;
    let mut has_cpu = false;
    let mut has_fpga = false;
    for device in devices_per_node.iter().flatten() {
        match device.kind {
            DeviceKind::Gpu => has_gpu = true,
            DeviceKind::Cpu => has_cpu = true,
            DeviceKind::Fpga => has_fpga = true,
        }
    }
    let accel = match (has_gpu, has_cpu, has_fpga) {
        (true, false, false) => "GPU",
        (false, true, false) => "CPU",
        (false, false, true) => "FPGA",
        (false, false, false) => return profile.name.to_string(),
        _ => "Mixed",
    };
    format!("{}+{}", profile.name, accel)
}

/// Builds the named daemons of one node from its device specs.
fn daemons_for_node(
    key_generator: &KeyGenerator,
    node_id: usize,
    specs: &[DeviceSpec],
) -> Vec<Daemon> {
    specs
        .iter()
        .enumerate()
        .map(|(daemon_index, spec)| {
            let key = key_generator.key_for(node_id, daemon_index);
            Daemon::new(
                format!("node{node_id}-daemon{daemon_index}"),
                spec.build(),
                key,
            )
        })
        .collect()
}

/// The deterministic key-space seed of a session's daemons.
const SESSION_KEY_SEED: u32 = 0xC1;

/// Builds the per-node daemon lists of a deployment from its specs.
fn daemons_for_deployment(specs: &[Vec<DeviceSpec>]) -> Vec<Vec<Daemon>> {
    let key_generator = KeyGenerator::new(SESSION_KEY_SEED);
    specs
        .iter()
        .enumerate()
        .map(|(node_id, node_specs)| daemons_for_node(&key_generator, node_id, node_specs))
        .collect()
}

/// Builds the per-node daemon lists of a deployment around already-live
/// backends — the shared-registry path of the job service, where device
/// contexts are checked out of a pool per job instead of being built per
/// worker.  Names and IPC keys are identical to [`daemons_for_deployment`],
/// so a run on pooled devices is indistinguishable from a run on
/// worker-owned ones.
pub(crate) fn daemons_from_backends(
    backends: Vec<Vec<Box<dyn AcceleratorBackend>>>,
) -> Vec<Vec<Daemon>> {
    let key_generator = KeyGenerator::new(SESSION_KEY_SEED);
    backends
        .into_iter()
        .enumerate()
        .map(|(node_id, node_backends)| {
            node_backends
                .into_iter()
                .enumerate()
                .map(|(daemon_index, backend)| {
                    Daemon::new(
                        format!("node{node_id}-daemon{daemon_index}"),
                        backend,
                        key_generator.key_for(node_id, daemon_index),
                    )
                })
                .collect()
        })
        .collect()
}

/// An owned, graph-independent description of a deployment: everything a
/// [`SessionBuilder`] collects except the graph reference itself.
///
/// The builder is the fluent front-end for deploying *one* session against a
/// borrowed graph.  The spec is the piece a [`GraphService`](crate::service)
/// keeps: it is `Clone`, it owns its partitioning and device lists, and
/// [`SessionSpec::build_session`] stamps out an identical deployment against
/// any reference to the graph — which is how every scheduler worker of a
/// service gets its own pooled session of the same shape.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    pub(crate) partitioning: Option<Partitioning>,
    pub(crate) profile: RuntimeProfile,
    pub(crate) network: NetworkModel,
    pub(crate) devices: Vec<Vec<DeviceSpec>>,
    pub(crate) backend: Option<BackendKind>,
    pub(crate) config: MiddlewareConfig,
    pub(crate) dataset: String,
    pub(crate) max_iterations: usize,
}

impl Default for SessionSpec {
    fn default() -> Self {
        Self {
            partitioning: None,
            profile: RuntimeProfile::powergraph(),
            network: NetworkModel::datacenter(),
            devices: Vec::new(),
            backend: None,
            config: MiddlewareConfig::default(),
            dataset: "unnamed".to_string(),
            max_iterations: DEFAULT_MAX_ITERATIONS,
        }
    }
}

impl SessionSpec {
    /// Validates the deployment description without building anything.
    ///
    /// # Errors
    /// The same typed errors as [`SessionBuilder::build`]:
    /// [`SessionError::MissingPartitioning`],
    /// [`SessionError::DeviceCountMismatch`] and
    /// [`SessionError::EmptyDeviceList`].
    pub fn validate(&self) -> Result<(), SessionError> {
        let partitioning = self
            .partitioning
            .as_ref()
            .ok_or(SessionError::MissingPartitioning)?;
        if !self.devices.is_empty() {
            if self.devices.len() != partitioning.num_parts() {
                return Err(SessionError::DeviceCountMismatch {
                    partitions: partitioning.num_parts(),
                    device_lists: self.devices.len(),
                });
            }
            if let Some(node) = self.devices.iter().position(Vec::is_empty) {
                return Err(SessionError::EmptyDeviceList { node });
            }
        }
        Ok(())
    }

    /// Deploys a fresh [`Session`] of this shape against `graph`.
    ///
    /// Every call produces an independent deployment (its own daemons,
    /// cluster and pooled buffers); a job service calls this once per worker.
    ///
    /// # Errors
    /// See [`SessionSpec::validate`].
    pub fn build_session<'g, V, E>(
        &self,
        graph: &'g PropertyGraph<V, E>,
    ) -> Result<Session<'g, V, E>, SessionError>
    where
        V: Clone + PartialEq + Send + Sync,
        E: Clone + Send + Sync,
    {
        self.clone().into_session(graph)
    }

    /// Consuming flavour of [`SessionSpec::build_session`].
    pub fn into_session<'g, V, E>(
        self,
        graph: &'g PropertyGraph<V, E>,
    ) -> Result<Session<'g, V, E>, SessionError>
    where
        V: Clone + PartialEq + Send + Sync,
        E: Clone + Send + Sync,
    {
        self.validate()?;
        let partitioning = self.partitioning.expect("validated above");
        let mut specs = self.devices;
        if let Some(backend) = self.backend {
            for spec in specs.iter_mut().flatten() {
                spec.backend = backend;
            }
        }
        let system = system_label(&self.profile, &specs);
        let daemons = daemons_for_deployment(&specs);
        Ok(Session {
            graph,
            partitioning,
            profile: self.profile,
            network: self.network,
            config: self.config,
            dataset: self.dataset,
            max_iterations: self.max_iterations,
            system,
            specs,
            daemons,
            cluster: None,
            triplet_pool: Vec::new(),
            pending_mutations: Vec::new(),
            scope: MutationScope::new(),
            warm: None,
        })
    }
}

/// Per-job overrides of a session's middleware configuration and iteration
/// cap.
///
/// A deployed session (or a pooled service worker) serves many jobs; some of
/// them want their own knobs — a different pipeline mode, a tighter
/// iteration budget — without mutating the session for every job after them.
/// `RunOverrides` routes those knobs through a single run:
/// [`Session::run_with`] applies them for that job only, the cluster is
/// re-seeded per job through [`Cluster::reset_for`] as always, and the
/// session's own configuration is untouched.  `None` fields fall back to the
/// session's values, so [`RunOverrides::default`] reproduces
/// [`Session::run`] exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunOverrides {
    /// Replaces the session's [`MiddlewareConfig`] for this run.
    pub config: Option<MiddlewareConfig>,
    /// Replaces the session's iteration cap for this run.
    pub max_iterations: Option<usize>,
}

impl RunOverrides {
    /// No overrides: the session's own configuration and cap apply.
    pub fn none() -> Self {
        Self::default()
    }

    /// Overrides the middleware configuration for this run.
    pub fn with_config(mut self, config: MiddlewareConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Overrides the iteration cap for this run.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = Some(max_iterations);
        self
    }
}

/// Fluent description of a GX-Plug deployment.
///
/// Required: the graph (constructor) and a partitioning
/// ([`SessionBuilder::partitioned_by`]).  Everything else has defaults: the
/// PowerGraph-like profile, the datacenter network, no devices (native-only
/// session), [`MiddlewareConfig::default`], dataset label `"unnamed"` and a
/// cap of [`DEFAULT_MAX_ITERATIONS`] iterations per run.
///
/// ```
/// use gxplug_accel::presets::gpu_v100;
/// use gxplug_core::{SessionBuilder, SessionError};
/// use gxplug_graph::generators::{Generator, Rmat};
/// use gxplug_graph::graph::PropertyGraph;
/// use gxplug_graph::partition::{GreedyVertexCutPartitioner, Partitioner};
///
/// let list = Rmat::new(6, 4.0).generate(3);
/// let graph: PropertyGraph<f64, f64> =
///     PropertyGraph::from_edge_list(list, f64::INFINITY).unwrap();
/// let partitioning = GreedyVertexCutPartitioner::default()
///     .partition(&graph, 2)
///     .unwrap();
/// // Misconfigured deployments are typed errors, not panics: here one device
/// // list is missing for the two-node partitioning.
/// let err = SessionBuilder::new(&graph)
///     .partitioned_by(partitioning)
///     .devices(vec![vec![gpu_v100("n0-g0")]])
///     .build()
///     .unwrap_err();
/// assert!(matches!(err, SessionError::DeviceCountMismatch { .. }));
/// ```
#[derive(Debug)]
pub struct SessionBuilder<'g, V, E> {
    graph: &'g PropertyGraph<V, E>,
    spec: SessionSpec,
}

impl<'g, V, E> SessionBuilder<'g, V, E>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
{
    /// Starts describing a deployment of `graph`.
    pub fn new(graph: &'g PropertyGraph<V, E>) -> Self {
        Self {
            graph,
            spec: SessionSpec::default(),
        }
    }

    /// The partitioning of the graph over distributed nodes (required).
    pub fn partitioned_by(mut self, partitioning: Partitioning) -> Self {
        self.spec.partitioning = Some(partitioning);
        self
    }

    /// The upper system's runtime profile (default: PowerGraph-like).
    pub fn profile(mut self, profile: RuntimeProfile) -> Self {
        self.spec.profile = profile;
        self
    }

    /// The interconnect model (default: datacenter).
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.spec.network = network;
        self
    }

    /// The devices plugged into each node, one spec list per partition.
    /// Leave unset for a native-only session.
    pub fn devices(mut self, devices_per_node: Vec<Vec<DeviceSpec>>) -> Self {
        self.spec.devices = devices_per_node;
        self
    }

    /// Selects the [`BackendKind`] every plugged device is built with,
    /// overriding the per-spec selection.  Leave unset to honour each spec's
    /// own backend (the presets default to [`BackendKind::Sim`]).
    ///
    /// Backends are interchangeable behind the kernel ABI: whichever backend
    /// executes the kernels, vertex results are bit-identical — only real
    /// wall-clock time changes.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.spec.backend = Some(backend);
        self
    }

    /// The middleware configuration (default: all optimisations on,
    /// threaded execution).
    pub fn config(mut self, config: MiddlewareConfig) -> Self {
        self.spec.config = config;
        self
    }

    /// The dataset label carried into run reports (default: `"unnamed"`).
    pub fn dataset(mut self, dataset: impl Into<String>) -> Self {
        self.spec.dataset = dataset.into();
        self
    }

    /// The per-run iteration cap (default: [`DEFAULT_MAX_ITERATIONS`];
    /// algorithms with their own caps converge earlier).
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.spec.max_iterations = max_iterations;
        self
    }

    /// Detaches the owned deployment description from the graph borrow —
    /// the form a [`GraphService`](crate::service) stores and stamps out
    /// once per worker session.
    pub fn into_spec(self) -> SessionSpec {
        self.spec
    }

    /// Validates the deployment and builds the [`Session`].
    ///
    /// # Errors
    /// [`SessionError::MissingPartitioning`] without a partitioning;
    /// [`SessionError::DeviceCountMismatch`] if the number of device lists
    /// does not match the partition count; [`SessionError::EmptyDeviceList`]
    /// if some node of an accelerated deployment has no device.
    pub fn build(self) -> Result<Session<'g, V, E>, SessionError> {
        self.spec.into_session(self.graph)
    }
}

/// Everything a single run needs besides the cluster and the algorithm.
struct RunContext<'a> {
    profile: RuntimeProfile,
    config: MiddlewareConfig,
    dataset: &'a str,
    system: &'a str,
    max_iterations: usize,
    sync_policy: SyncPolicy,
}

/// A deployed GX-Plug system: the partitioned graph distributed over a
/// simulated cluster, with the configured daemons plugged into its nodes.
///
/// Built by [`SessionBuilder`].  [`Session::run`] submits one algorithm run
/// through the middleware; [`Session::run_native`] runs the upper system
/// without accelerators on the same deployment (apples-to-apples baseline).
/// The deployment — cluster structure and daemon device contexts — is reused
/// across runs: only the first run pays the setup cost.
pub struct Session<'g, V, E> {
    graph: &'g PropertyGraph<V, E>,
    partitioning: Partitioning,
    profile: RuntimeProfile,
    network: NetworkModel,
    config: MiddlewareConfig,
    dataset: String,
    max_iterations: usize,
    system: String,
    /// The device specs the deployment was built from (backend overrides
    /// applied), kept so the backend can be swapped between runs.
    specs: Vec<Vec<DeviceSpec>>,
    /// One daemon list per node; daemons stay connected between runs.
    daemons: Vec<Vec<Daemon>>,
    /// Built on the first run, reset (not rebuilt) on every further run.
    cluster: Option<Cluster<V, E>>,
    /// One pooled triplet arena per node, installed into the run's agents
    /// and recovered afterwards: a reused session refills the same warm
    /// buffers run after run instead of re-growing fresh ones.
    triplet_pool: Vec<Arc<TripletBuffer<V, E>>>,
    /// Mutation batches accepted before the cluster was first built; replayed
    /// in log order right after [`Cluster::build`], so a lazily-deployed
    /// session catches up with the mutated graph.
    pending_mutations: Vec<Arc<ResolvedMutation<V, E>>>,
    /// What the mutations since the last completed run touched — the input
    /// to [`GraphAlgorithm::rescope`] when the next run can go incremental.
    scope: MutationScope,
    /// Identity of the run whose converged values currently sit in the
    /// cluster, if any — the warm state an incremental recompute may
    /// continue from.
    warm: Option<WarmState>,
}

/// Identity of the converged values left in a session's cluster by its most
/// recent run.  An incremental recompute is only sound when the *same*
/// algorithm (name and parameters) continues from its own converged state.
struct WarmState {
    name: &'static str,
    cache_key: Option<String>,
    converged: bool,
}

impl<V, E> fmt::Debug for Session<'_, V, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("system", &self.system)
            .field("nodes", &self.partitioning.num_parts())
            .field("daemons", &self.daemons.iter().map(Vec::len).sum::<usize>())
            .field("deployed", &self.cluster.is_some())
            .finish()
    }
}

impl<'g, V, E> Session<'g, V, E>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
{
    /// Starts a [`SessionBuilder`] for `graph` (same as
    /// [`SessionBuilder::new`]).
    pub fn builder(graph: &'g PropertyGraph<V, E>) -> SessionBuilder<'g, V, E> {
        SessionBuilder::new(graph)
    }

    /// Number of distributed nodes in the deployment.
    pub fn num_nodes(&self) -> usize {
        self.partitioning.num_parts()
    }

    /// The partitioning the session was deployed with.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The middleware configuration used for the next run.
    pub fn config(&self) -> &MiddlewareConfig {
        &self.config
    }

    /// The system label reported by accelerated runs (e.g.
    /// `"PowerGraph+GPU"`).
    pub fn system(&self) -> &str {
        &self.system
    }

    /// Whether any devices are plugged into this session.
    pub fn has_devices(&self) -> bool {
        !self.daemons.is_empty()
    }

    /// Replaces the middleware configuration for subsequent runs.
    ///
    /// Middleware state is per run, so this is exactly as if the session had
    /// been deployed with `config` — ablation sweeps can reuse one deployment
    /// for every configuration.
    pub fn set_config(&mut self, config: MiddlewareConfig) {
        self.config = config;
    }

    /// Replaces the per-run iteration cap for subsequent runs.
    pub fn set_max_iterations(&mut self, max_iterations: usize) {
        self.max_iterations = max_iterations;
    }

    /// The device specs of the deployment (one list per node, backend
    /// overrides applied).
    pub fn device_specs(&self) -> &[Vec<DeviceSpec>] {
        &self.specs
    }

    /// Swaps the accelerator backend of every plugged device for subsequent
    /// runs on this deployment.
    ///
    /// Backends are interchangeable behind the kernel ABI, so the swap
    /// changes *only* real wall-clock behaviour: vertex results (and every
    /// simulated metric) stay bit-identical run to run.  The daemons are
    /// rebuilt from the stored specs, which tears down the old device
    /// contexts — the next accelerated run pays setup again, exactly like a
    /// fresh deployment.  A no-op on sessions without devices.
    pub fn set_backend(&mut self, backend: BackendKind) {
        if self.specs.is_empty() {
            return;
        }
        self.close();
        for spec in self.specs.iter_mut().flatten() {
            spec.backend = backend;
        }
        self.daemons = daemons_for_deployment(&self.specs);
    }

    /// Applies one resolved mutation batch to the deployed cluster in place,
    /// or queues it for replay right after the cluster is first built.
    ///
    /// The session's own graph reference stays what it was deployed with —
    /// the mutation lives in the cluster's per-node state (and in the queue
    /// until there is one).  Batches must arrive in log order, each exactly
    /// once; the [`GraphService`](crate::service) guarantees that by fanning
    /// every accepted batch to its worker sessions under the log lock.
    ///
    /// The batch's footprint is folded into the session's mutation scope:
    /// the next run either re-seeds incrementally from the accumulated dirty
    /// frontier (when the algorithm opts in via
    /// [`GraphAlgorithm::supports_incremental`] and is continuing from its
    /// own converged values) or falls back to a full
    /// [`Cluster::reset_for`].
    pub fn apply_mutations(&mut self, delta: &Arc<ResolvedMutation<V, E>>) {
        self.scope.absorb(delta);
        match self.cluster.as_mut() {
            Some(cluster) => cluster.apply_mutations(delta),
            None => self.pending_mutations.push(Arc::clone(delta)),
        }
    }

    /// Drops the warm converged state of the most recent run, forcing the
    /// next run after mutations to re-initialise every vertex even if the
    /// algorithm supports incremental recompute.  Benchmarks use this to
    /// measure the full-recompute baseline on one deployment; it has no
    /// effect on results (an incremental recompute is bit-identical to the
    /// full one by contract).
    pub fn forget_warm_state(&mut self) {
        self.warm = None;
    }

    /// Builds the cluster on the first run, resets it on every further run —
    /// or, after live mutations, re-seeds just the dirty frontier when
    /// `algorithm` is warm-continuing and opts in.
    fn prepare_cluster<A>(&mut self, algorithm: &A)
    where
        A: GraphAlgorithm<V, E>,
    {
        let built_now = self.cluster.is_none();
        if built_now {
            self.cluster = Some(Cluster::build(
                self.graph,
                self.partitioning.clone(),
                algorithm,
                self.profile,
                self.network,
            ));
        }
        let cluster = self.cluster.as_mut().expect("built above");
        let mutated = !self.scope.is_empty();
        for delta in std::mem::take(&mut self.pending_mutations) {
            cluster.apply_mutations(&delta);
        }
        if built_now && !mutated {
            // A fresh build is already initialised for `algorithm`.
            return;
        }
        let seed = if mutated && algorithm.supports_incremental() {
            self.warm
                .as_ref()
                .filter(|warm| {
                    warm.converged
                        && warm.name == algorithm.name()
                        && warm.cache_key == algorithm.cache_key()
                })
                .and_then(|_| algorithm.rescope(&self.scope))
        } else {
            None
        };
        match seed {
            Some(seed) => cluster.seed_incremental(algorithm, &seed, &self.scope.added_vertices),
            None => cluster.reset_for(algorithm),
        }
        self.scope.clear();
    }

    /// Takes the per-node triplet arenas out of the pool for a run,
    /// initialising them on the first accelerated run.
    fn take_triplet_pool(&mut self) -> Vec<Arc<TripletBuffer<V, E>>> {
        let pool = std::mem::take(&mut self.triplet_pool);
        if pool.len() == self.partitioning.num_parts() {
            pool
        } else {
            (0..self.partitioning.num_parts())
                .map(|_| Arc::new(TripletBuffer::new()))
                .collect()
        }
    }

    /// Usage statistics of the pooled per-node triplet arenas (empty before
    /// the first accelerated run).  At steady state — a reused session
    /// re-running workloads it has seen — `reallocations` stops growing: the
    /// hot path refills the warm buffers without touching the allocator.
    pub fn triplet_buffer_stats(&self) -> Vec<ViewStats> {
        self.triplet_pool
            .iter()
            .map(|buffer| buffer.stats())
            .collect()
    }

    /// Runs `algorithm` through the GX-Plug middleware on the deployed
    /// cluster: one agent per distributed node, bridging the node's plugged
    /// daemons.
    ///
    /// The first run pays the device initialisation (`report.setup`); every
    /// further run reuses the live daemon contexts and reports zero setup.
    ///
    /// # Errors
    /// [`SessionError::NoDevices`] if the session was deployed without
    /// devices; [`SessionError::Runtime`] if the run aborted on a middleware
    /// runtime error (e.g. a device kernel rejecting a mis-sized block).  On
    /// a runtime error the daemons and pooled buffers are recovered, so the
    /// session stays usable for further runs.
    ///
    /// # Panics
    /// Panics if a daemon worker panics while computing (the worker's panic
    /// is propagated).  A panicked worker takes its daemon with it, so a
    /// session whose run panicked is poisoned: if the panic is caught,
    /// further [`Session::run`] calls report [`SessionError::NoDevices`].
    pub fn run<A>(&mut self, algorithm: &A) -> Result<RunOutcome<V>, SessionError>
    where
        A: GraphAlgorithm<V, E>,
    {
        self.run_with(algorithm, RunOverrides::none())
    }

    /// [`Session::run`] with per-job [`RunOverrides`].
    ///
    /// The overrides apply to *this run only*: the session's own
    /// configuration and iteration cap are untouched, so concurrent callers
    /// of a pooled deployment (the scheduler workers of a
    /// [`GraphService`](crate::service)) can give every job its own knobs
    /// without session-wide mutation ordering mattering.
    ///
    /// # Errors
    /// See [`Session::run`].
    pub fn run_with<A>(
        &mut self,
        algorithm: &A,
        overrides: RunOverrides,
    ) -> Result<RunOutcome<V>, SessionError>
    where
        A: GraphAlgorithm<V, E>,
    {
        if self.daemons.is_empty() {
            return Err(SessionError::NoDevices);
        }
        self.prepare_cluster(algorithm);
        let daemons = std::mem::take(&mut self.daemons);
        let pool = self.take_triplet_pool();
        let config = overrides.config.unwrap_or(self.config);
        let context = RunContext {
            profile: self.profile,
            config,
            dataset: &self.dataset,
            system: &self.system,
            max_iterations: overrides.max_iterations.unwrap_or(self.max_iterations),
            sync_policy: if config.skipping {
                SyncPolicy::SkipWhenLocal
            } else {
                SyncPolicy::AlwaysSync
            },
        };
        let cluster = self.cluster.as_mut().expect("cluster deployed above");
        let (report, agent_stats, daemons, pool) = match context.config.execution {
            ExecutionMode::Serial => run_agents_serial(cluster, algorithm, &context, daemons, pool),
            ExecutionMode::Threaded => {
                run_agents_threaded(cluster, algorithm, &context, daemons, pool)
            }
        };
        // Recover the deployment (daemons, warm buffers) before surfacing
        // any error, so a failed run does not poison the session.
        self.daemons = daemons;
        self.triplet_pool = pool;
        // An aborted run leaves partially-updated vertex values behind —
        // nothing an incremental recompute may continue from.
        self.warm = None;
        let report = report?;
        self.warm = Some(WarmState {
            name: algorithm.name(),
            cache_key: algorithm.cache_key(),
            converged: report.converged,
        });
        let values = cluster.collect_values();
        Ok(RunOutcome {
            report,
            agent_stats,
            values,
        })
    }

    /// Runs `algorithm` natively (no accelerators) on the same deployed
    /// cluster, using the configured [`ExecutionMode`].
    pub fn run_native<A>(&mut self, algorithm: &A) -> RunOutcome<V>
    where
        A: GraphAlgorithm<V, E>,
    {
        self.run_native_with(algorithm, RunOverrides::none())
    }

    /// [`Session::run_native`] with per-job [`RunOverrides`] (only the
    /// execution mode and iteration cap matter natively — the middleware
    /// knobs have nothing to configure).
    pub fn run_native_with<A>(&mut self, algorithm: &A, overrides: RunOverrides) -> RunOutcome<V>
    where
        A: GraphAlgorithm<V, E>,
    {
        self.prepare_cluster(algorithm);
        let cluster = self.cluster.as_mut().expect("cluster deployed above");
        let report = cluster.run_native_mode(
            algorithm,
            &self.dataset,
            overrides.max_iterations.unwrap_or(self.max_iterations),
            overrides.config.unwrap_or(self.config).execution,
        );
        self.warm = Some(WarmState {
            name: algorithm.name(),
            cache_key: algorithm.cache_key(),
            converged: report.converged,
        });
        let values = cluster.collect_values();
        RunOutcome {
            report,
            agent_stats: Vec::new(),
            values,
        }
    }
}

impl<V, E> Session<'_, V, E> {
    /// Tears the deployment down: shuts every daemon's device context down.
    ///
    /// Idempotent — closing twice (or dropping an explicitly closed session)
    /// is a no-op, because [`Daemon::shutdown`] only tears down contexts
    /// that are actually live.  A closed session is *not* poisoned: the next
    /// accelerated run reconnects the daemons and pays the device
    /// initialisation again, exactly like a fresh deployment.
    pub fn close(&mut self) {
        for daemon in self.daemons.iter_mut().flatten() {
            daemon.shutdown();
        }
    }

    /// Plugs a deployment's daemon lists into the session, replacing whatever
    /// it currently holds.  The shared-registry path of the job service uses
    /// this together with [`Session::take_daemons`] to check devices out of a
    /// pool at job start and back in at job end.
    pub(crate) fn install_daemons(&mut self, daemons: Vec<Vec<Daemon>>) {
        self.daemons = daemons;
    }

    /// Takes the deployment's daemon lists out of the session, leaving it
    /// device-less ([`Session::has_devices`] reads `false`).  A run that
    /// panicked mid-flight leaves an empty list behind — its daemons were
    /// consumed by the run and destroyed in the unwind — so callers must
    /// check what comes back before returning devices to a shared pool.
    pub(crate) fn take_daemons(&mut self) -> Vec<Vec<Daemon>> {
        std::mem::take(&mut self.daemons)
    }
}

impl<V, E> Drop for Session<'_, V, E> {
    /// Dropping a session closes it.  Daemons additionally shut their own
    /// contexts down when dropped, so even a session torn apart mid-run by a
    /// panicking job (whose daemons never make it back into `self.daemons`)
    /// cannot leak live device contexts.
    fn drop(&mut self) {
        self.close();
    }
}

/// The serial per-node compute phase: one [`Agent`] per node, driven on the
/// calling thread, with kernel errors aborting the superstep.
struct SerialAgents<'a, V, E, M, A> {
    agents: &'a mut [Agent<V, E, M>],
    algorithm: &'a A,
}

impl<V, E, M, A> ComputePhase<V, E, M> for SerialAgents<'_, V, E, M, A>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    M: Clone + Send + Sync,
    A: GraphAlgorithm<V, E, Msg = M>,
{
    type Error = RuntimeError;

    fn compute(
        &mut self,
        nodes: &mut [NodeState<V, E>],
        iteration: usize,
    ) -> Result<Vec<NodeComputeOutput<V, M>>, RuntimeError> {
        nodes
            .iter_mut()
            .zip(self.agents.iter_mut())
            .map(|(node, agent)| agent.process_iteration(node, self.algorithm, iteration))
            .collect()
    }
}

/// What either middleware path returns: the run result plus everything the
/// session recovers for its next run (daemons with live device contexts,
/// warm triplet arenas).
type AgentsRunResult<V, E> = (
    Result<RunReport, RuntimeError>,
    Vec<AgentStats>,
    Vec<Vec<Daemon>>,
    Vec<Arc<TripletBuffer<V, E>>>,
);

/// The serial middleware path: agents own their daemons for the duration of
/// the run and drive them on the calling thread.  Returns the daemons and
/// the pooled triplet arenas so the session can keep both alive for the next
/// run.
fn run_agents_serial<V, E, A>(
    cluster: &mut Cluster<V, E>,
    algorithm: &A,
    context: &RunContext<'_>,
    daemons: Vec<Vec<Daemon>>,
    pool: Vec<Arc<TripletBuffer<V, E>>>,
) -> AgentsRunResult<V, E>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    A: GraphAlgorithm<V, E>,
{
    let mut agents: Vec<Agent<V, E, A::Msg>> = daemons
        .into_iter()
        .zip(pool)
        .enumerate()
        .map(|(node_id, (node_daemons, buffer))| {
            let mut agent = Agent::new(
                node_id,
                node_daemons,
                context.profile,
                context.config,
                cluster.node(node_id).num_vertices(),
            );
            agent.install_triplet_buffer(buffer);
            agent
        })
        .collect();

    // connect(): device contexts are initialised in parallel across nodes,
    // so the setup cost is the slowest node's initialisation — and zero when
    // the session already connected them on an earlier run.
    let setup = agents
        .iter_mut()
        .map(Agent::connect)
        .fold(SimDuration::ZERO, SimDuration::max);

    let mut phase = SerialAgents {
        agents: &mut agents,
        algorithm,
    };
    let report = cluster.run_phased(
        algorithm,
        context.dataset,
        context.system,
        context.max_iterations,
        context.sync_policy,
        setup,
        &mut phase,
    );
    let agent_stats = agents.iter().map(Agent::stats).collect();
    // No disconnect: the daemons stay connected across session runs.
    let (daemons, pool) = agents
        .into_iter()
        .map(|mut agent| {
            let buffer = agent.take_triplet_buffer();
            (agent.into_daemons(), buffer)
        })
        .unzip();
    (report, agent_stats, daemons, pool)
}

/// The threaded middleware path: a scoped thread per daemon for the whole
/// run, plus a scoped thread per node within each superstep.
fn run_agents_threaded<V, E, A>(
    cluster: &mut Cluster<V, E>,
    algorithm: &A,
    context: &RunContext<'_>,
    daemons: Vec<Vec<Daemon>>,
    pool: Vec<Arc<TripletBuffer<V, E>>>,
) -> AgentsRunResult<V, E>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    A: GraphAlgorithm<V, E>,
{
    thread::scope(|scope| {
        let mut agents: Vec<ThreadedAgent<'_, '_, V, E, A::Msg>> = daemons
            .into_iter()
            .zip(pool)
            .enumerate()
            .map(|(node_id, (node_daemons, buffer))| {
                let mut agent = ThreadedAgent::spawn(
                    scope,
                    node_id,
                    node_daemons,
                    context.profile,
                    context.config,
                    cluster.node(node_id).num_vertices(),
                );
                agent.install_triplet_buffer(buffer);
                agent
            })
            .collect();

        let setup = agents
            .iter_mut()
            .map(ThreadedAgent::connect)
            .fold(SimDuration::ZERO, SimDuration::max);

        let mut phase = ThreadedNodes {
            agents: &mut agents,
            algorithm,
        };
        let report = cluster.run_phased(
            algorithm,
            context.dataset,
            context.system,
            context.max_iterations,
            context.sync_policy,
            setup,
            &mut phase,
        );
        let agent_stats = agents.iter().map(ThreadedAgent::stats).collect();
        // Join every daemon worker (a worker that panicked re-raises here)
        // WITHOUT disconnecting: the recovered daemons keep their device
        // contexts alive for the session's next run.  The triplet arenas are
        // taken back first; by the end of the joins every outstanding share
        // view has been dropped, so the arenas are uniquely held again.
        let (daemons, pool) = agents
            .into_iter()
            .map(|mut agent| {
                let buffer = agent.take_triplet_buffer();
                (agent.join(), buffer)
            })
            .unzip();
        (report, agent_stats, daemons, pool)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineMode;
    use gxplug_accel::presets;
    use gxplug_engine::template::AddressedMessage;
    use gxplug_graph::generators::{Generator, Rmat};
    use gxplug_graph::partition::{GreedyVertexCutPartitioner, Partitioner};
    use gxplug_graph::types::{Triplet, VertexId};

    struct Sssp {
        sources: Vec<VertexId>,
    }

    impl GraphAlgorithm<f64, f64> for Sssp {
        type Msg = f64;
        fn init_vertex(&self, v: VertexId, _d: usize) -> f64 {
            if self.sources.contains(&v) {
                0.0
            } else {
                f64::INFINITY
            }
        }
        fn msg_gen(&self, t: &Triplet<f64, f64>, _i: usize) -> Vec<AddressedMessage<f64>> {
            if t.src_attr.is_finite() {
                vec![AddressedMessage::new(t.dst, t.src_attr + t.edge_attr)]
            } else {
                Vec::new()
            }
        }
        fn msg_merge(&self, a: f64, b: f64) -> f64 {
            a.min(b)
        }
        fn msg_apply(&self, _v: VertexId, cur: &f64, msg: &f64, _i: usize) -> Option<f64> {
            (msg + 1e-12 < *cur).then_some(*msg)
        }
        fn initial_active(&self, _n: usize) -> Option<Vec<VertexId>> {
            Some(self.sources.clone())
        }
        fn name(&self) -> &'static str {
            "sssp-bf"
        }
    }

    fn test_graph() -> PropertyGraph<f64, f64> {
        let list = Rmat::new(11, 8.0).generate(11);
        PropertyGraph::from_edge_list(list, f64::INFINITY).unwrap()
    }

    fn gpus_per_node(nodes: usize, per_node: usize) -> Vec<Vec<DeviceSpec>> {
        (0..nodes)
            .map(|n| {
                (0..per_node)
                    .map(|g| presets::gpu_v100(format!("n{n}g{g}")))
                    .collect()
            })
            .collect()
    }

    fn partitioned(graph: &PropertyGraph<f64, f64>, parts: usize) -> Partitioning {
        GreedyVertexCutPartitioner::default()
            .partition(graph, parts)
            .unwrap()
    }

    #[test]
    fn accelerated_run_matches_native_results() {
        let graph = test_graph();
        let algorithm = Sssp { sources: vec![0] };
        let parts = 3;
        let partitioning = partitioned(&graph, parts);
        let mut session = SessionBuilder::new(&graph)
            .partitioned_by(partitioning)
            .devices(gpus_per_node(parts, 1))
            .dataset("rmat")
            .max_iterations(200)
            .build()
            .unwrap();
        let native = session.run_native(&algorithm);
        let accelerated = session.run(&algorithm).unwrap();
        assert!(native.report.converged);
        assert!(accelerated.report.converged);
        assert_eq!(native.values.len(), accelerated.values.len());
        for (v, (a, b)) in native.values.iter().zip(&accelerated.values).enumerate() {
            let same = (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9;
            assert!(same, "vertex {v}: native {a} vs accelerated {b}");
        }
    }

    #[test]
    fn gpu_acceleration_beats_native_powergraph() {
        let graph = test_graph();
        let algorithm = Sssp {
            sources: vec![0, 1, 2, 3],
        };
        let parts = 2;
        let mut session = SessionBuilder::new(&graph)
            .partitioned_by(partitioned(&graph, parts))
            .devices(gpus_per_node(parts, 1))
            .dataset("rmat")
            .max_iterations(200)
            .build()
            .unwrap();
        let native = session.run_native(&algorithm);
        let accelerated = session.run(&algorithm).unwrap();
        // Compare iteration time excluding the one-off GPU initialisation
        // (which amortises over a session's lifetime; this test graph is
        // small).
        let native_iter_time = native.report.total_time();
        let accel_iter_time = accelerated.report.total_time() - accelerated.report.setup;
        assert!(
            accel_iter_time < native_iter_time,
            "accelerated {accel_iter_time:?} should beat native {native_iter_time:?}"
        );
        assert_eq!(accelerated.report.system, "PowerGraph+GPU");
    }

    #[test]
    fn agent_stats_are_collected_per_node() {
        let graph = test_graph();
        let algorithm = Sssp { sources: vec![0] };
        let mut session = SessionBuilder::new(&graph)
            .partitioned_by(partitioned(&graph, 2))
            .devices(gpus_per_node(2, 2))
            .profile(RuntimeProfile::graphx())
            .config(MiddlewareConfig::default().with_pipeline(PipelineMode::Optimal))
            .dataset("rmat")
            .max_iterations(200)
            .build()
            .unwrap();
        let outcome = session.run(&algorithm).unwrap();
        assert_eq!(outcome.agent_stats.len(), 2);
        let total_triplets: u64 = outcome
            .agent_stats
            .iter()
            .map(|s| s.triplets_processed)
            .sum();
        assert_eq!(total_triplets as usize, outcome.report.total_triplets());
        assert!(outcome.report.setup > SimDuration::ZERO);
        assert_eq!(outcome.report.system, "GraphX+GPU");
    }

    #[test]
    fn session_reuse_amortizes_setup_and_keeps_results_identical() {
        let graph = test_graph();
        let algorithm = Sssp { sources: vec![0] };
        let mut session = SessionBuilder::new(&graph)
            .partitioned_by(partitioned(&graph, 2))
            .devices(gpus_per_node(2, 1))
            .dataset("rmat")
            .max_iterations(200)
            .build()
            .unwrap();
        let first = session.run(&algorithm).unwrap();
        let second = session.run(&algorithm).unwrap();
        // The deployment is paid exactly once...
        assert!(first.report.setup > SimDuration::ZERO);
        assert!(second.report.setup.is_zero());
        // ...and nothing else differs between the runs.
        assert_eq!(first.report.iterations, second.report.iterations);
        for (a, b) in first.values.iter().zip(&second.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sessions_serve_different_algorithms_on_one_deployment() {
        let graph = test_graph();
        let mut session = SessionBuilder::new(&graph)
            .partitioned_by(partitioned(&graph, 2))
            .devices(gpus_per_node(2, 1))
            .max_iterations(200)
            .build()
            .unwrap();
        // A parameter sweep: each source set is its own submitted job.
        for sources in [vec![0], vec![1, 2], vec![5]] {
            let outcome = session.run(&Sssp { sources }).unwrap();
            assert!(outcome.report.converged);
        }
        // The cluster was reset in between: the last run is not polluted by
        // the earlier frontiers.
        let last = session.run(&Sssp { sources: vec![0] }).unwrap();
        let fresh = SessionBuilder::new(&graph)
            .partitioned_by(partitioned(&graph, 2))
            .devices(gpus_per_node(2, 1))
            .max_iterations(200)
            .build()
            .unwrap()
            .run(&Sssp { sources: vec![0] })
            .unwrap();
        for (a, b) in last.values.iter().zip(&fresh.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn set_config_applies_to_subsequent_runs() {
        let graph = test_graph();
        let algorithm = Sssp { sources: vec![0] };
        let mut session = SessionBuilder::new(&graph)
            .partitioned_by(partitioned(&graph, 2))
            .devices(gpus_per_node(2, 1))
            .max_iterations(200)
            .build()
            .unwrap();
        let optimised = session.run(&algorithm).unwrap();
        session.set_config(MiddlewareConfig::baseline());
        let baseline = session.run(&algorithm).unwrap();
        assert_eq!(session.config(), &MiddlewareConfig::baseline());
        for (a, b) in optimised.values.iter().zip(&baseline.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The baseline moves more data through the upper system.
        let moved = |stats: &[AgentStats]| {
            stats
                .iter()
                .map(|s| s.downloaded_entities + s.uploaded_entities)
                .sum::<u64>()
        };
        assert!(moved(&baseline.agent_stats) > moved(&optimised.agent_stats));
    }

    #[test]
    fn builder_requires_a_partitioning() {
        let graph = test_graph();
        let result = SessionBuilder::new(&graph).build();
        assert_eq!(
            result.err().map(|e| e.to_string()),
            Some(SessionError::MissingPartitioning.to_string())
        );
    }

    #[test]
    fn device_list_length_must_match_partition_count() {
        let graph = test_graph();
        let result = SessionBuilder::new(&graph)
            .partitioned_by(partitioned(&graph, 3))
            .devices(gpus_per_node(2, 1))
            .build();
        match result {
            Err(SessionError::DeviceCountMismatch {
                partitions,
                device_lists,
            }) => {
                assert_eq!(partitions, 3);
                assert_eq!(device_lists, 2);
            }
            other => panic!("expected DeviceCountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn empty_device_lists_are_rejected() {
        let graph = test_graph();
        let result = SessionBuilder::new(&graph)
            .partitioned_by(partitioned(&graph, 2))
            .devices(vec![vec![presets::gpu_v100("g0")], Vec::new()])
            .build();
        assert_eq!(
            result.err(),
            Some(SessionError::EmptyDeviceList { node: 1 })
        );
    }

    #[test]
    fn running_accelerated_without_devices_is_a_typed_error() {
        let graph = test_graph();
        let mut session = SessionBuilder::new(&graph)
            .partitioned_by(partitioned(&graph, 2))
            .build()
            .unwrap();
        let result = session.run(&Sssp { sources: vec![0] });
        assert_eq!(result.err(), Some(SessionError::NoDevices));
        // The native path still works on the same session.
        assert!(
            session
                .run_native(&Sssp { sources: vec![0] })
                .report
                .converged
        );
    }

    #[test]
    fn system_labels_follow_device_mix() {
        let profile = RuntimeProfile::powergraph();
        assert_eq!(system_label(&profile, &[]), "PowerGraph");
        assert_eq!(
            system_label(&profile, &[vec![presets::gpu_v100("g")]]),
            "PowerGraph+GPU"
        );
        assert_eq!(
            system_label(&profile, &[vec![presets::cpu_xeon_20c("c")]]),
            "PowerGraph+CPU"
        );
        assert_eq!(
            system_label(
                &profile,
                &[vec![presets::gpu_v100("g"), presets::cpu_xeon_20c("c")]]
            ),
            "PowerGraph+Mixed"
        );
    }
}
