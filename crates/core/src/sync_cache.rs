//! Inter-iteration optimisation: synchronization caching (§III-B2).
//!
//! Two mechanisms reduce the data volume crossing between the upper system and
//! the middleware at iteration boundaries:
//!
//! * **LRU-based caching** — the agent keeps a temporary vertex table so that
//!   vertices repeatedly involved in computation are not re-downloaded from
//!   the upper system when their attributes have not changed;
//! * **Lazy uploading** — updated vertices are uploaded only when some other
//!   distributed node actually asks for them, coordinated through a *global
//!   query queue* and a *global data queue* (Algorithm 3).

use gxplug_graph::types::VertexId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Statistics of one agent's cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups satisfied from the cache (downloads avoided).
    pub hits: u64,
    /// Lookups that had to go to the upper system.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Dirty entries whose upload was deferred by lazy uploading.
    pub lazy_deferrals: u64,
    /// Dirty entries eventually uploaded (on eviction or on demand).
    pub uploads: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; zero when there were no lookups.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry<V> {
    value: V,
    /// Iteration of last use; entries age as iterations pass and the least
    /// recently used entry is evicted first.
    last_used: u64,
    /// Whether the entry was updated locally and not yet uploaded.
    dirty: bool,
}

/// The agent-local vertex cache.
#[derive(Debug, Clone)]
pub struct VertexCache<V> {
    capacity: usize,
    entries: HashMap<VertexId, CacheEntry<V>>,
    stats: CacheStats,
}

impl<V: Clone> VertexCache<V> {
    /// Creates a cache holding at most `capacity` vertices.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: HashMap::with_capacity(capacity.min(1 << 20)),
            stats: CacheStats::default(),
        }
    }

    /// Number of cached vertices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Running statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up a vertex for computation at iteration `now`.
    ///
    /// A hit refreshes the entry's recency (its "weight" in the paper's
    /// terms); a miss means the agent must download the vertex from the upper
    /// system and then [`VertexCache::fill`] it.
    pub fn lookup(&mut self, v: VertexId, now: u64) -> Option<V> {
        match self.entries.get_mut(&v) {
            Some(entry) => {
                entry.last_used = now;
                self.stats.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Returns `true` if the vertex is cached, without touching recency or
    /// statistics.
    pub fn contains(&self, v: VertexId) -> bool {
        self.entries.contains_key(&v)
    }

    /// Inserts a vertex freshly downloaded from the upper system.
    ///
    /// Returns the dirty entries that had to be evicted (and therefore must be
    /// uploaded to the upper system now, as the paper prescribes: "If the
    /// chosen vertices were updated in previous iterations, corresponding
    /// information will be uploaded").
    pub fn fill(&mut self, v: VertexId, value: V, now: u64) -> Vec<(VertexId, V)> {
        let mut forced_uploads = Vec::new();
        if !self.entries.contains_key(&v) && self.entries.len() >= self.capacity {
            if let Some((victim, entry)) = self.evict_lru() {
                if entry.dirty {
                    self.stats.uploads += 1;
                    forced_uploads.push((victim, entry.value));
                }
            }
        }
        self.entries.insert(
            v,
            CacheEntry {
                value,
                last_used: now,
                dirty: false,
            },
        );
        forced_uploads
    }

    /// Records a locally computed update: the new value enters the cache,
    /// marked dirty, with refreshed recency.  Returns forced uploads exactly
    /// like [`VertexCache::fill`].
    pub fn record_update(&mut self, v: VertexId, value: V, now: u64) -> Vec<(VertexId, V)> {
        let forced = if self.entries.contains_key(&v) {
            Vec::new()
        } else {
            self.fill(v, value.clone(), now)
        };
        if let Some(entry) = self.entries.get_mut(&v) {
            entry.value = value;
            entry.dirty = true;
            entry.last_used = now;
            self.stats.lazy_deferrals += 1;
        }
        forced
    }

    /// Drops a cached vertex (e.g. because another node updated it, so the
    /// cached copy is stale).
    pub fn invalidate(&mut self, v: VertexId) {
        self.entries.remove(&v);
    }

    /// Answers a global query: returns (and marks uploaded) the dirty entries
    /// among `queried`, which is exactly what lazy uploading pushes to the
    /// global data queue (Algorithm 3, line 4-5).
    pub fn answer_query(&mut self, queried: &HashSet<VertexId>) -> Vec<(VertexId, V)> {
        let mut answers = Vec::new();
        for (&v, entry) in self.entries.iter_mut() {
            if entry.dirty && queried.contains(&v) {
                entry.dirty = false;
                answers.push((v, entry.value.clone()));
            }
        }
        self.stats.uploads += answers.len() as u64;
        answers
    }

    /// Number of entries currently dirty (deferred uploads outstanding).
    pub fn dirty_count(&self) -> usize {
        self.entries.values().filter(|e| e.dirty).count()
    }

    /// Flushes every dirty entry (used at the end of a run so the upper
    /// system ends up with the final values).
    pub fn flush_dirty(&mut self) -> Vec<(VertexId, V)> {
        let mut flushed = Vec::new();
        for (&v, entry) in self.entries.iter_mut() {
            if entry.dirty {
                entry.dirty = false;
                flushed.push((v, entry.value.clone()));
            }
        }
        self.stats.uploads += flushed.len() as u64;
        flushed
    }

    fn evict_lru(&mut self) -> Option<(VertexId, CacheEntry<V>)> {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(&v, entry)| (entry.last_used, v))
            .map(|(&v, _)| v)?;
        self.stats.evictions += 1;
        self.entries.remove(&victim).map(|entry| (victim, entry))
    }
}

/// The cluster-wide lazy-uploading rendezvous of Algorithm 3: agents push the
/// vertex ids they will need next iteration into the *global query queue*,
/// then answer each other's queries through the *global data queue*.
#[derive(Debug, Clone, Default)]
pub struct GlobalSyncQueues<V> {
    query: HashSet<VertexId>,
    data: HashMap<VertexId, V>,
}

impl<V: Clone> GlobalSyncQueues<V> {
    /// Creates empty queues for one synchronisation round.
    pub fn new() -> Self {
        Self {
            query: HashSet::new(),
            data: HashMap::new(),
        }
    }

    /// An agent pushes the vertex ids its node will need next iteration
    /// (Algorithm 3, lines 1-2).
    pub fn push_query<I: IntoIterator<Item = VertexId>>(&mut self, needed: I) {
        self.query.extend(needed);
    }

    /// The union of all queried vertex ids, broadcast to every agent.
    pub fn queried(&self) -> &HashSet<VertexId> {
        &self.query
    }

    /// An agent pushes the queried entities it owns updated copies of
    /// (Algorithm 3, lines 4-5).
    pub fn push_data<I: IntoIterator<Item = (VertexId, V)>>(&mut self, updates: I) {
        self.data.extend(updates);
    }

    /// An agent fetches the values it queried (Algorithm 3, line 7).
    pub fn fetch(&self, needed: &HashSet<VertexId>) -> Vec<(VertexId, V)> {
        self.data
            .iter()
            .filter(|(v, _)| needed.contains(v))
            .map(|(&v, value)| (v, value.clone()))
            .collect()
    }

    /// Number of entities carried by the global data queue — the actual
    /// synchronisation payload after lazy uploading.
    pub fn data_volume(&self) -> usize {
        self.data.len()
    }

    /// Number of distinct queried vertices.
    pub fn query_volume(&self) -> usize {
        self.query.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_hit_after_fill_and_miss_before() {
        let mut cache = VertexCache::new(8);
        assert_eq!(cache.lookup(3, 0), None);
        cache.fill(3, 1.5f64, 0);
        assert_eq!(cache.lookup(3, 1), Some(1.5));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_prefers_least_recently_used() {
        let mut cache = VertexCache::new(2);
        cache.fill(1, 10, 0);
        cache.fill(2, 20, 1);
        // Touch vertex 1 so vertex 2 becomes the LRU entry.
        cache.lookup(1, 2);
        cache.fill(3, 30, 3);
        assert!(cache.contains(1));
        assert!(!cache.contains(2));
        assert!(cache.contains(3));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn evicting_a_dirty_entry_forces_an_upload() {
        let mut cache = VertexCache::new(1);
        cache.record_update(7, 70, 0);
        assert_eq!(cache.dirty_count(), 1);
        let forced = cache.fill(8, 80, 1);
        assert_eq!(forced, vec![(7, 70)]);
        assert_eq!(cache.stats().uploads, 1);
        assert_eq!(cache.dirty_count(), 0);
    }

    #[test]
    fn lazy_upload_only_answers_queried_vertices() {
        let mut cache = VertexCache::new(8);
        cache.record_update(1, 100, 0);
        cache.record_update(2, 200, 0);
        cache.record_update(3, 300, 0);
        let queried: HashSet<VertexId> = [2, 3].into_iter().collect();
        let mut answers = cache.answer_query(&queried);
        answers.sort_unstable_by_key(|(v, _)| *v);
        assert_eq!(answers, vec![(2, 200), (3, 300)]);
        // Vertex 1 stays deferred; a flush gets it out eventually.
        assert_eq!(cache.dirty_count(), 1);
        assert_eq!(cache.flush_dirty(), vec![(1, 100)]);
        assert_eq!(cache.dirty_count(), 0);
    }

    #[test]
    fn invalidation_causes_the_next_lookup_to_miss() {
        let mut cache = VertexCache::new(4);
        cache.fill(5, 50, 0);
        assert!(cache.lookup(5, 1).is_some());
        cache.invalidate(5);
        assert!(cache.lookup(5, 2).is_none());
    }

    #[test]
    fn global_queues_follow_algorithm_three() {
        let mut queues = GlobalSyncQueues::new();
        // Agent 0 will need vertices {1, 2}; agent 1 will need {2, 3}.
        queues.push_query([1, 2]);
        queues.push_query([2, 3]);
        assert_eq!(queues.query_volume(), 3);
        // Agent 0 owns updated copies of 3; agent 1 owns 1 and 7 (7 unqueried,
        // its cache would not answer with it).
        queues.push_data([(3, 30)]);
        queues.push_data([(1, 10)]);
        assert_eq!(queues.data_volume(), 2);
        let needed: HashSet<VertexId> = [2, 3].into_iter().collect();
        let mut fetched = queues.fetch(&needed);
        fetched.sort_unstable_by_key(|(v, _)| *v);
        assert_eq!(fetched, vec![(3, 30)]);
    }

    #[test]
    fn cache_capacity_is_at_least_one() {
        let cache: VertexCache<u8> = VertexCache::new(0);
        assert_eq!(cache.capacity(), 1);
        assert!(cache.is_empty());
    }
}
