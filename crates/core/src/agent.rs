//! The agent (§II-A2).
//!
//! "An agent represents a distributed node of an upper system and makes a
//! bridge for upper systems and daemons."  For every iteration the agent
//!
//! 1. determines the node's active workload (edges whose source changed),
//! 2. downloads the vertex data the daemons will need — consulting its LRU
//!    cache first when synchronization caching is enabled,
//! 3. packages edge triplets into blocks (using the block size prescribed by
//!    Lemma 1 when the pipeline runs in optimal mode) and feeds them to its
//!    daemons, splitting work across daemons by their capacity factors,
//! 4. merges the generated messages (`MSGMerge`) and decides how much of the
//!    result actually has to be uploaded to the upper system (lazy uploading),
//! 5. attributes simulated time to the whole exchange using the pipeline
//!    model of §III-A.
//!
//! The triplet path is **zero-copy at steady state**: the iteration's
//! triplets are materialised once into a reusable
//! [`TripletBuffer`](gxplug_graph::view::TripletBuffer) (owned by the agent,
//! pooled by the session across runs), [`split_by_capacity`] carves the
//! buffer into *index ranges* rather than owned share vectors, and the
//! daemons consume borrowed `&[Triplet]` block views in place.  Generated
//! messages land in pooled per-daemon buffers that are cleared — never
//! reallocated — between iterations.
//!
//! Two agent front-ends share this logic through [`AgentCore`]: the serial
//! [`Agent`] here, which owns its daemons and drives them on the calling
//! thread, and the threaded
//! [`ThreadedAgent`](crate::runtime::ThreadedAgent), which dispatches shares
//! to daemon worker threads so its daemons genuinely compute concurrently.

use crate::config::{MiddlewareConfig, PipelineMode};
use crate::daemon::{execute_share, Daemon};
use crate::metrics::AgentStats;
use crate::pipeline::block_size::PipelineCoefficients;
use crate::runtime::RuntimeError;
use crate::sync_cache::VertexCache;
use gxplug_accel::SimDuration;
use gxplug_engine::cluster::NodeComputeOutput;
use gxplug_engine::node::NodeState;
use gxplug_engine::profile::RuntimeProfile;
use gxplug_engine::template::{AddressedMessage, GraphAlgorithm};
use gxplug_graph::dense::{DenseSlots, FrontierSet};
use gxplug_graph::types::{PartitionId, VertexId};
use gxplug_graph::view::TripletBuffer;
use std::ops::Range;
use std::sync::Arc;

/// Fallback batch size for the unpipelined ("5-step") workflow, so that even
/// without the pipeline a daemon never receives a batch beyond its device
/// memory.
pub(crate) const UNPIPELINED_MAX_BATCH: usize = 65_536;

/// The download plan of one iteration: what the agent found active and what
/// it had to move across the upper-system boundary.  The active edge ids
/// themselves live in the core's pooled [`PlanScratch`] (see
/// [`AgentCore::active_edge_ids`]), so the plan is a cheap copy.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IterationPlan {
    /// Number of active edge triplets (`d`, the iteration's data volume).
    pub d: usize,
    /// Entities (vertices + first-time edges) downloaded this iteration.
    pub download_entities: usize,
}

/// The pooled planning-path buffers of one agent: the per-iteration active
/// edge list and the download set.  Cleared — never reallocated — between
/// iterations, so the planning phase stops allocating at steady state just
/// like the triplet path.
#[derive(Debug, Default)]
struct PlanScratch {
    /// Local ids of the iteration's active edges (ascending).
    active_edge_ids: Vec<usize>,
    /// Dedup bitset for the download working set, over dense local ids.
    needed_marks: FrontierSet,
    /// The iteration's download working set, in deterministic probe order.
    needed_vertices: Vec<VertexId>,
}

/// What executing one daemon's share produced, together with the planning
/// metadata the timing attribution needs.
#[derive(Debug, Clone)]
pub(crate) struct ShareRun {
    /// Coefficients of the daemon that ran the share.
    pub coefficients: PipelineCoefficients,
    /// Number of triplets in the share.
    pub share_len: usize,
    /// Block size the share was chunked into.
    pub block_size: usize,
    /// Number of blocks launched.
    pub blocks: usize,
}

/// The reusable buffers of one agent's zero-copy hot path, grouped so both
/// agent front-ends pool the same state:
///
/// * `triplets` — the iteration's materialised triplet arena.  Behind an
///   `Arc` so the threaded runtime can hand borrowed share views to daemon
///   worker threads without copying (the `Arc` is uniquely held again by the
///   time the next iteration refills it).  The session re-installs the same
///   arena run after run, so a reused session stops growing it entirely.
/// * `msg_bufs` — one message buffer per daemon, drained into the merge each
///   iteration and refilled in place the next.
/// * `shares` / `dispatched` / `share_runs` — the per-iteration planning
///   vectors, cleared rather than reallocated.
#[derive(Debug)]
pub(crate) struct AgentScratch<V, E, M> {
    pub triplets: Arc<TripletBuffer<V, E>>,
    pub msg_bufs: Vec<Vec<AddressedMessage<M>>>,
    pub shares: Vec<Range<usize>>,
    pub dispatched: Vec<usize>,
    pub share_runs: Vec<ShareRun>,
    /// Pooled dense slots for the per-target `MSGMerge`, keyed by the node's
    /// dense local ids — the hash-free sibling of the triplet arena; an epoch
    /// bump resets it each iteration.
    pub merge: DenseSlots<M>,
    /// Messages whose target has no local replica (never produced by a sound
    /// partitioning) — appended verbatim after the dense drain.
    pub overflow: Vec<AddressedMessage<M>>,
}

impl<V, E, M> AgentScratch<V, E, M> {
    pub(crate) fn new(num_daemons: usize) -> Self {
        Self {
            triplets: Arc::new(TripletBuffer::new()),
            msg_bufs: (0..num_daemons).map(|_| Vec::new()).collect(),
            shares: Vec::with_capacity(num_daemons),
            dispatched: Vec::with_capacity(num_daemons),
            share_runs: Vec::with_capacity(num_daemons),
            merge: DenseSlots::new(),
            overflow: Vec::new(),
        }
    }

    /// Swaps in a pooled triplet arena (e.g. the session's, reused across
    /// runs), returning the previous one.
    pub(crate) fn install_triplets(
        &mut self,
        triplets: Arc<TripletBuffer<V, E>>,
    ) -> Arc<TripletBuffer<V, E>> {
        std::mem::replace(&mut self.triplets, triplets)
    }
}

/// The middleware bookkeeping of one distributed node: configuration, cache,
/// statistics and the per-iteration phases that do *not* involve a device.
///
/// Both agent front-ends delegate here, so serial and threaded execution
/// share one implementation of the download, merge, upload and timing logic —
/// which is what makes their results bit-identical.
#[derive(Debug)]
pub(crate) struct AgentCore<V> {
    node_id: PartitionId,
    config: MiddlewareConfig,
    profile: RuntimeProfile,
    cache: Option<VertexCache<V>>,
    edges_registered: bool,
    stats: AgentStats,
    plan: PlanScratch,
}

impl<V> AgentCore<V>
where
    V: Clone + PartialEq,
{
    pub(crate) fn new(
        node_id: PartitionId,
        profile: RuntimeProfile,
        config: MiddlewareConfig,
        local_vertices: usize,
    ) -> Self {
        let cache = config.caching.then(|| {
            let capacity =
                ((local_vertices as f64 * config.cache_capacity_fraction).ceil() as usize).max(1);
            VertexCache::new(capacity)
        });
        Self {
            node_id,
            config,
            profile,
            cache,
            edges_registered: false,
            stats: AgentStats::default(),
            plan: PlanScratch::default(),
        }
    }

    /// The active edge ids of the current iteration, as planned by the last
    /// [`AgentCore::begin_iteration`] call (pooled across iterations).
    pub(crate) fn active_edge_ids(&self) -> &[usize] {
        &self.plan.active_edge_ids
    }

    pub(crate) fn node_id(&self) -> PartitionId {
        self.node_id
    }

    pub(crate) fn config(&self) -> &MiddlewareConfig {
        &self.config
    }

    pub(crate) fn profile(&self) -> &RuntimeProfile {
        &self.profile
    }

    pub(crate) fn stats(&self) -> AgentStats {
        let mut stats = self.stats;
        if let Some(cache) = &self.cache {
            stats.cache = cache.stats();
        }
        stats
    }

    pub(crate) fn record_init_time(&mut self, init: SimDuration) {
        self.stats.init_time += init;
    }

    /// The download phase: determines the active workload and moves the
    /// needed vertex data (and, once, the edge topology) into the shared
    /// memory space, consulting the cache when enabled.  Returns `None` when
    /// the node is idle.
    ///
    /// The planning vectors (active edge ids, the download working set) are
    /// pooled in [`PlanScratch`]: steady-state iterations refill them in
    /// place, allocating nothing.  The active edge ids stay readable through
    /// [`AgentCore::active_edge_ids`] until the next `begin_iteration`.
    pub(crate) fn begin_iteration<E>(
        &mut self,
        node: &mut NodeState<V, E>,
        iteration: usize,
    ) -> Option<IterationPlan> {
        node.active_edge_ids_into(&mut self.plan.active_edge_ids);
        let d = self.plan.active_edge_ids.len();
        if d == 0 {
            return None;
        }
        self.stats.iterations += 1;

        // Dedup the download working set through a dense bitset over the
        // node's local ids — no hashing on the hot path.
        let needed_marks = &mut self.plan.needed_marks;
        needed_marks.ensure_capacity(node.num_vertices());
        needed_marks.clear();
        let needed_vertices = &mut self.plan.needed_vertices;
        needed_vertices.clear();
        for &edge_id in &self.plan.active_edge_ids {
            if let Some((src, dst)) = node.edge_endpoint_locals(edge_id) {
                if needed_marks.insert(src) {
                    needed_vertices.push(node.vertex_table().global_of(src));
                }
                if needed_marks.insert(dst) {
                    needed_vertices.push(node.vertex_table().global_of(dst));
                }
            }
        }
        // Probe the cache in a deterministic order: the probe order decides
        // LRU evictions, so a fixed total order (independent of how the set
        // was gathered) is what makes the hit/miss counters reproducible.
        // The order is scrambled by a fixed mix (not ascending) because a
        // strict sequential scan is the LRU worst case — it would evict every
        // entry just before re-probing it.
        needed_vertices.sort_unstable_by_key(|&v| (gxplug_ipc::key::splitmix64(v as u64), v));
        let needed_count = needed_vertices.len();
        let vertex_downloads = match &mut self.cache {
            Some(cache) => {
                let mut misses = 0usize;
                for &v in needed_vertices.iter() {
                    let current = match node.vertex_value(v) {
                        Some(value) => value,
                        None => continue,
                    };
                    // A hit only counts if the cached copy is still identical
                    // to the upper system's value; stale entries must be
                    // re-downloaded.
                    let fresh = cache
                        .lookup(v, iteration as u64)
                        .map(|cached| &cached == current)
                        .unwrap_or(false);
                    if !fresh {
                        cache.fill(v, current.clone(), iteration as u64);
                        misses += 1;
                    }
                }
                self.stats.downloads_avoided += (needed_count - misses) as u64;
                misses
            }
            None => needed_count,
        };
        // Edge topology is static: it is registered in the shared memory
        // space once, on the first iteration, and never re-downloaded.
        let edge_downloads = if self.edges_registered {
            0
        } else {
            self.edges_registered = true;
            node.num_edges()
        };
        let download_entities = vertex_downloads + edge_downloads;
        self.stats.downloaded_entities += download_entities as u64;
        Some(IterationPlan {
            d,
            download_entities,
        })
    }

    /// Chooses the block size for a share on a daemon with the given
    /// coefficients and memory capacity.
    pub(crate) fn block_size_for(
        &self,
        coefficients: &PipelineCoefficients,
        share_len: usize,
        memory_capacity_items: Option<usize>,
    ) -> usize {
        choose_block_size(
            &self.config.pipeline,
            coefficients,
            share_len,
            memory_capacity_items.unwrap_or(UNPIPELINED_MAX_BATCH),
        )
    }

    /// The upload and timing-attribution phases, shared by the serial and
    /// threaded paths.  `merged` is the iteration's per-target `MSGMerge`
    /// output (see [`dense_merge`]) — both paths drain their per-daemon
    /// buffers in daemon order (then block, then triplet) into the merge,
    /// which keeps the per-target combine order, and therefore the results,
    /// identical.
    pub(crate) fn finish_iteration<E, M>(
        &mut self,
        node: &NodeState<V, E>,
        plan: &IterationPlan,
        merged: Vec<AddressedMessage<M>>,
        share_runs: &[ShareRun],
    ) -> NodeComputeOutput<V, M> {
        let d = plan.d;
        self.stats.triplets_processed += d as u64;
        for run in share_runs {
            self.stats.kernel_launches += run.blocks as u64;
        }

        // ---- upload phase -----------------------------------------------------
        let uploads = if self.config.lazy_upload && self.cache.is_some() {
            // Messages whose target is mastered on this very node never need
            // to leave the middleware: the agent keeps them in its cache and
            // only remote-destined entities enter the global data queue.
            let remote = merged
                .iter()
                .filter(|m| {
                    !node
                        .vertex_table()
                        .get(m.target)
                        .map(|row| row.is_master)
                        .unwrap_or(false)
                })
                .count();
            self.stats.uploads_avoided += (merged.len() - remote) as u64;
            remote
        } else {
            merged.len()
        };
        self.stats.uploaded_entities += uploads as u64;

        // ---- timing attribution (pipeline model of §III-A) --------------------
        let mut compute_time = SimDuration::ZERO;
        let mut overhead_time = SimDuration::ZERO;
        for run in share_runs {
            let base = &run.coefficients;
            let share_len = run.share_len;
            let share_fraction = share_len as f64 / d as f64;
            let k1_eff = (base.k1 * (plan.download_entities as f64 * share_fraction)
                / share_len as f64)
                .max(1e-9);
            let k3_eff = (base.k3 * (uploads as f64 * share_fraction) / share_len as f64).max(1e-9);
            let effective = PipelineCoefficients::new(k1_eff, base.k2, k3_eff, base.a);
            let share_time_ms = if self.config.pipeline.is_enabled() {
                effective.estimate_total(share_len, run.block_size)
            } else {
                effective.estimate_unpipelined(share_len)
            };
            // Two upper-system crossings per iteration and daemon: one for the
            // download stream, one for the upload stream.
            let crossings = self.profile.per_crossing * 2.0;
            let share_time = SimDuration::from_millis(share_time_ms) + crossings;
            let pure_compute =
                SimDuration::from_millis(base.a * run.blocks as f64 + base.k2 * share_len as f64);
            compute_time = compute_time.max(share_time);
            // Everything that is not pure device compute is middleware
            // overhead (transfers, packaging, crossings).
            overhead_time = overhead_time.max(share_time - pure_compute);
            self.stats.block_size_sum += run.block_size as u64;
            self.stats.block_count_sum += run.blocks as u64;
        }
        self.stats.pipeline_time += compute_time;
        self.stats.overhead_time += overhead_time;

        NodeComputeOutput {
            compute_time,
            middleware_time: overhead_time,
            triplets_processed: d,
            messages: merged,
            pre_applied: Vec::new(),
        }
    }
}

/// The per-target `MSGMerge` of one iteration's raw daemon output, through
/// the agent's pooled dense slots.
///
/// `raw` must yield messages ordered by daemon index (then block, then
/// triplet); targets are resolved to the node's dense local ids, combined in
/// arrival order (`msg_merge(existing, incoming)`), and drained in first-seen
/// order.  Targets without a local replica (never produced by a sound
/// partitioning) pass through `overflow`, appended verbatim — the cluster's
/// synchronisation folds them with the same left-to-right combine order
/// either way.  Zero steady-state allocation beyond the returned vector.
pub(crate) fn dense_merge<V, E, A>(
    node: &NodeState<V, E>,
    algorithm: &A,
    raw: impl IntoIterator<Item = AddressedMessage<A::Msg>>,
    slots: &mut DenseSlots<A::Msg>,
    overflow: &mut Vec<AddressedMessage<A::Msg>>,
) -> Vec<AddressedMessage<A::Msg>>
where
    A: GraphAlgorithm<V, E>,
{
    slots.ensure_capacity(node.num_vertices());
    slots.begin();
    overflow.clear();
    for message in raw {
        match node.vertex_table().local_of(message.target) {
            Some(local) => slots.merge(local, message.payload, |existing, payload| {
                algorithm.msg_merge(existing, payload)
            }),
            None => overflow.push(message),
        }
    }
    let mut merged = Vec::with_capacity(slots.len() + overflow.len());
    for i in 0..slots.len() {
        let local = slots.touched_at(i);
        if let Some(payload) = slots.take(local) {
            merged.push(AddressedMessage::new(
                node.vertex_table().global_of(local),
                payload,
            ));
        }
    }
    merged.append(overflow);
    merged
}

/// The agent of one distributed node, driving its daemons serially on the
/// calling thread.
///
/// `V` and `E` are the graph's vertex and edge attribute types; `M` is the
/// message type of the algorithm this agent serves for the current run
/// (`A::Msg`).  Carrying `M` in the type is what lets the agent own pooled
/// message buffers instead of allocating fresh ones every iteration.
#[derive(Debug)]
pub struct Agent<V, E, M> {
    core: AgentCore<V>,
    daemons: Vec<Daemon>,
    /// Capacity factors of the daemons, captured once (they are static).
    capacities: Vec<f64>,
    scratch: AgentScratch<V, E, M>,
}

impl<V, E, M> Agent<V, E, M>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    M: Clone + Send + Sync,
{
    /// Creates an agent for distributed node `node_id`, bridging the given
    /// daemons to an upper system with runtime profile `profile`.
    ///
    /// `local_vertices` sizes the synchronization cache (a configured
    /// fraction of the node's vertex count).
    pub fn new(
        node_id: PartitionId,
        daemons: Vec<Daemon>,
        profile: RuntimeProfile,
        config: MiddlewareConfig,
        local_vertices: usize,
    ) -> Self {
        assert!(!daemons.is_empty(), "an agent needs at least one daemon");
        let capacities: Vec<f64> = daemons.iter().map(Daemon::capacity_factor).collect();
        let scratch = AgentScratch::new(daemons.len());
        Self {
            core: AgentCore::new(node_id, profile, config, local_vertices),
            daemons,
            capacities,
            scratch,
        }
    }

    /// The distributed node this agent serves.
    pub fn node_id(&self) -> PartitionId {
        self.core.node_id()
    }

    /// The daemons attached to this agent.
    pub fn daemons(&self) -> &[Daemon] {
        &self.daemons
    }

    /// Number of attached daemons.
    pub fn num_daemons(&self) -> usize {
        self.daemons.len()
    }

    /// Total computation capacity factor of the attached daemons.
    pub fn capacity_factor(&self) -> f64 {
        self.capacities.iter().sum()
    }

    /// The middleware configuration in force.
    pub fn config(&self) -> &MiddlewareConfig {
        self.core.config()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> AgentStats {
        self.core.stats()
    }

    /// Installs a pooled triplet arena (e.g. the session's, so a reused
    /// session keeps one warm buffer per node across runs).
    pub fn install_triplet_buffer(&mut self, buffer: Arc<TripletBuffer<V, E>>) {
        self.scratch.install_triplets(buffer);
    }

    /// Takes the triplet arena back (returning a fresh empty one to the
    /// agent), so the session can pool it for the next run.
    pub fn take_triplet_buffer(&mut self) -> Arc<TripletBuffer<V, E>> {
        self.scratch
            .install_triplets(Arc::new(TripletBuffer::new()))
    }

    /// `connect()`: starts every daemon (device initialisation happens here,
    /// once per run — runtime isolation).  Returns the summed initialisation
    /// time, which the runner reports as setup cost.
    pub fn connect(&mut self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for daemon in &mut self.daemons {
            total += daemon.start();
        }
        self.core.record_init_time(total);
        total
    }

    /// `disconnect()`: shuts every daemon down.
    pub fn disconnect(&mut self) {
        for daemon in &mut self.daemons {
            daemon.shutdown();
        }
    }

    /// Releases the daemons without shutting them down, so a session can keep
    /// their device contexts alive for the next run.
    pub fn into_daemons(self) -> Vec<Daemon> {
        self.daemons
    }

    /// Executes one middleware iteration for this agent's node and returns
    /// the merged messages plus the timing attribution the cluster driver
    /// expects.
    ///
    /// # Errors
    /// [`RuntimeError::Kernel`] if a device rejects a block (e.g. a mis-sized
    /// block exceeding device memory); the error aborts the run instead of
    /// the process.
    pub fn process_iteration<A>(
        &mut self,
        node: &mut NodeState<V, E>,
        algorithm: &A,
        iteration: usize,
    ) -> Result<NodeComputeOutput<V, M>, RuntimeError>
    where
        A: GraphAlgorithm<V, E, Msg = M>,
    {
        let plan = match self.core.begin_iteration(node, iteration) {
            Some(plan) => plan,
            None => return Ok(NodeComputeOutput::idle()),
        };

        // ---- compute phase (MSGGen over borrowed capacity shares) -----------
        let buffer = Arc::get_mut(&mut self.scratch.triplets)
            .expect("no triplet share views outstanding between iterations");
        node.fill_triplets(self.core.active_edge_ids(), buffer);
        let triplets = self.scratch.triplets.as_slice();
        split_by_capacity_into(triplets.len(), &self.capacities, &mut self.scratch.shares);
        self.scratch.share_runs.clear();
        for buf in &mut self.scratch.msg_bufs {
            buf.clear();
        }
        for (daemon_index, range) in self.scratch.shares.iter().enumerate() {
            if range.is_empty() {
                continue;
            }
            let share = &triplets[range.clone()];
            let daemon = &mut self.daemons[daemon_index];
            let coefficients = daemon.coefficients(self.core.profile());
            let block_size = self.core.block_size_for(
                &coefficients,
                share.len(),
                daemon.backend().memory_capacity_items(),
            );
            let out = &mut self.scratch.msg_bufs[daemon_index];
            let blocks = execute_share(daemon, algorithm, share, block_size, iteration, out)?;
            self.scratch.share_runs.push(ShareRun {
                coefficients,
                share_len: share.len(),
                block_size,
                blocks,
            });
        }

        // ---- merge phase (MSGMerge, into pooled dense slots) ----------------
        let AgentScratch {
            msg_bufs,
            merge,
            overflow,
            ..
        } = &mut self.scratch;
        let raw = msg_bufs.iter_mut().flat_map(|buf| buf.drain(..));
        let merged = dense_merge(node, algorithm, raw, merge, overflow);
        Ok(self
            .core
            .finish_iteration(node, &plan, merged, &self.scratch.share_runs))
    }
}

/// Splits `d` triplets into contiguous index ranges proportional to the
/// daemons' capacity factors (faster daemons receive more triplets).  The
/// ranges partition `0..d` exactly; any rounding remainder goes to the last
/// daemon.  Returning ranges instead of owned share vectors is what keeps the
/// capacity split copy-free: every share is a borrowed view of the
/// iteration's triplet buffer.
///
/// # Panics
/// Panics if `d > 0` and `capacities` is empty.
pub fn split_by_capacity(d: usize, capacities: &[f64]) -> Vec<Range<usize>> {
    let mut shares = Vec::with_capacity(capacities.len());
    split_by_capacity_into(d, capacities, &mut shares);
    shares
}

/// [`split_by_capacity`] into a reusable output vector (cleared first).
///
/// # Panics
/// Panics if `d > 0` and `capacities` is empty — there is no daemon to
/// assign the triplets to, and silently dropping them would corrupt the run.
pub fn split_by_capacity_into(d: usize, capacities: &[f64], shares: &mut Vec<Range<usize>>) {
    assert!(
        d == 0 || !capacities.is_empty(),
        "cannot split {d} triplets over zero capacities"
    );
    shares.clear();
    let total_capacity: f64 = capacities.iter().sum();
    let mut offset = 0usize;
    for (index, capacity) in capacities.iter().enumerate() {
        let remaining_daemons = capacities.len() - index;
        let take = if remaining_daemons == 1 {
            d - offset
        } else {
            ((d as f64) * capacity / total_capacity).round() as usize
        }
        .min(d - offset);
        shares.push(offset..offset + take);
        offset += take;
    }
    // Any rounding remainder goes to the last daemon.
    if offset < d {
        if let Some(last) = shares.last_mut() {
            last.end = d;
        }
    }
}

/// Chooses the block size according to the configured pipeline mode, bounded
/// by the device memory capacity.
fn choose_block_size(
    mode: &PipelineMode,
    coefficients: &PipelineCoefficients,
    share: usize,
    device_capacity: usize,
) -> usize {
    let chosen = match mode {
        PipelineMode::Disabled => share.min(UNPIPELINED_MAX_BATCH),
        PipelineMode::FixedBlockSize(b) => (*b).max(1),
        PipelineMode::FixedBlockCount(s) => share.div_ceil((*s).max(1)),
        PipelineMode::Optimal => coefficients.optimal_block_size(share).block_size,
    };
    chosen.clamp(1, device_capacity.max(1)).min(share.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gxplug_accel::presets;
    use gxplug_engine::network::NetworkModel;
    use gxplug_engine::template::AddressedMessage;
    use gxplug_graph::edge_list::EdgeList;
    use gxplug_graph::graph::PropertyGraph;
    use gxplug_graph::partition::{HashEdgePartitioner, Partitioner};
    use gxplug_graph::types::Triplet;
    use gxplug_ipc::key::KeyGenerator;

    struct Relax;

    impl GraphAlgorithm<f64, f64> for Relax {
        type Msg = f64;
        fn init_vertex(&self, v: VertexId, _d: usize) -> f64 {
            if v == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        }
        fn msg_gen(&self, t: &Triplet<f64, f64>, _i: usize) -> Vec<AddressedMessage<f64>> {
            if t.src_attr.is_finite() {
                vec![AddressedMessage::new(t.dst, t.src_attr + t.edge_attr)]
            } else {
                Vec::new()
            }
        }
        fn msg_merge(&self, a: f64, b: f64) -> f64 {
            a.min(b)
        }
        fn msg_apply(&self, _v: VertexId, cur: &f64, msg: &f64, _i: usize) -> Option<f64> {
            (msg < cur).then_some(*msg)
        }
        fn initial_active(&self, _n: usize) -> Option<Vec<VertexId>> {
            Some(vec![0])
        }
        fn name(&self) -> &'static str {
            "relax"
        }
    }

    fn test_node() -> NodeState<f64, f64> {
        let list: EdgeList<f64> = (0u32..64)
            .flat_map(|v| vec![(v, (v + 1) % 64, 1.0), (v, (v + 7) % 64, 2.0)])
            .collect();
        let graph = PropertyGraph::from_edge_list(list, f64::INFINITY).unwrap();
        let partitioning = HashEdgePartitioner::new(0).partition(&graph, 1).unwrap();
        let _ = NetworkModel::datacenter();
        NodeState::build(0, &graph, &partitioning, &Relax)
    }

    fn agent(config: MiddlewareConfig) -> Agent<f64, f64, f64> {
        let keys = KeyGenerator::new(1);
        let daemons = vec![
            Daemon::new("gpu0", presets::gpu_v100("gpu0"), keys.key_for(0, 0)),
            Daemon::new("cpu0", presets::cpu_xeon_20c("cpu0"), keys.key_for(0, 1)),
        ];
        Agent::new(0, daemons, RuntimeProfile::powergraph(), config, 64)
    }

    #[test]
    fn connect_initialises_all_daemons_once() {
        let mut agent = agent(MiddlewareConfig::default());
        let first = agent.connect();
        assert!(first > SimDuration::ZERO);
        let second = agent.connect();
        assert!(second.is_zero());
        assert!(agent.daemons().iter().all(Daemon::is_started));
        agent.disconnect();
        assert!(agent.daemons().iter().all(|d| !d.is_started()));
    }

    #[test]
    fn idle_nodes_produce_idle_output() {
        let mut agent = agent(MiddlewareConfig::default());
        agent.connect();
        let mut node = test_node();
        node.clear_active();
        let output = agent.process_iteration(&mut node, &Relax, 0).unwrap();
        assert_eq!(output.triplets_processed, 0);
        assert!(output.compute_time.is_zero());
        assert!(output.messages.is_empty());
    }

    #[test]
    fn messages_match_native_msg_gen_semantics() {
        let mut agent = agent(MiddlewareConfig::default());
        agent.connect();
        let mut node = test_node();
        let output = agent.process_iteration(&mut node, &Relax, 0).unwrap();
        // Only vertex 0 is active: it has two out-edges, to vertices 1 and 7.
        assert_eq!(output.triplets_processed, 2);
        let mut targets: Vec<VertexId> = output.messages.iter().map(|m| m.target).collect();
        targets.sort_unstable();
        assert_eq!(targets, vec![1, 7]);
        assert!(output.compute_time > SimDuration::ZERO);
        assert!(output.middleware_time > SimDuration::ZERO);
        assert!(output.middleware_time <= output.compute_time);
    }

    #[test]
    fn caching_reduces_downloads_on_repeated_iterations() {
        let mut cached = agent(MiddlewareConfig::default());
        let mut uncached = agent(MiddlewareConfig::default().with_caching(false));
        cached.connect();
        uncached.connect();
        // All vertices active both iterations: the second iteration should be
        // mostly cache hits for the cached agent.
        for run in [&mut cached, &mut uncached] {
            let mut node = test_node();
            node.activate_all();
            run.process_iteration(&mut node, &Relax, 0).unwrap();
            node.activate_all();
            run.process_iteration(&mut node, &Relax, 1).unwrap();
        }
        assert!(cached.stats().downloads_avoided > 0);
        assert_eq!(uncached.stats().downloads_avoided, 0);
        assert!(cached.stats().downloaded_entities < uncached.stats().downloaded_entities);
    }

    #[test]
    fn lazy_upload_only_uploads_remote_targets_on_single_node() {
        // On a single-node cluster every target is mastered locally, so lazy
        // uploading avoids every upload.
        let mut agent = agent(MiddlewareConfig::default());
        agent.connect();
        let mut node = test_node();
        let output = agent.process_iteration(&mut node, &Relax, 0).unwrap();
        assert!(!output.messages.is_empty());
        assert_eq!(agent.stats().uploaded_entities, 0);
        assert_eq!(agent.stats().uploads_avoided, output.messages.len() as u64);
    }

    #[test]
    fn pipeline_modes_affect_time_but_not_results() {
        let mut outputs = Vec::new();
        for config in [
            MiddlewareConfig::default().with_pipeline(PipelineMode::Optimal),
            MiddlewareConfig::default().with_pipeline(PipelineMode::FixedBlockSize(8)),
            MiddlewareConfig::default().with_pipeline(PipelineMode::Disabled),
        ] {
            let mut a = agent(config);
            a.connect();
            let mut node = test_node();
            node.activate_all();
            let output = a.process_iteration(&mut node, &Relax, 0).unwrap();
            outputs.push(output);
        }
        // Same messages regardless of pipeline configuration.
        let normalize = |o: &NodeComputeOutput<f64, f64>| {
            let mut m: Vec<(VertexId, f64)> =
                o.messages.iter().map(|m| (m.target, m.payload)).collect();
            m.sort_by(|a, b| a.partial_cmp(b).unwrap());
            m
        };
        assert_eq!(normalize(&outputs[0]), normalize(&outputs[1]));
        assert_eq!(normalize(&outputs[0]), normalize(&outputs[2]));
        // The unpipelined 5-step workflow is slower than the optimally
        // pipelined one.  (A badly chosen fixed block size can be worse than
        // no pipeline at all on tiny workloads, so only the optimal mode is
        // compared here.)
        assert!(outputs[2].compute_time > outputs[0].compute_time);
    }

    #[test]
    fn steady_state_iterations_reuse_the_triplet_arena() {
        let mut agent = agent(MiddlewareConfig::default());
        agent.connect();
        let mut node = test_node();
        // Warm-up iteration discovers the peak workload.
        node.activate_all();
        agent.process_iteration(&mut node, &Relax, 0).unwrap();
        let warm = agent.scratch.triplets.stats();
        // Steady state: the same workload refills in place.
        for iteration in 1..5 {
            node.activate_all();
            agent
                .process_iteration(&mut node, &Relax, iteration)
                .unwrap();
        }
        let steady = agent.scratch.triplets.stats();
        assert_eq!(steady.fills, warm.fills + 4);
        assert_eq!(
            steady.reallocations, warm.reallocations,
            "steady-state refills must not grow the arena"
        );
    }

    #[test]
    fn oversized_fixed_blocks_surface_as_kernel_errors_not_panics() {
        // A fixed block size beyond the device capacity is clamped by the
        // planner; to exercise the propagation we call the share executor
        // directly with a mis-sized block.
        let keys = KeyGenerator::new(2);
        let mut daemon = Daemon::new("g", presets::gpu_v100("g"), keys.key_for(0, 0));
        daemon.start();
        let triplets: Vec<Triplet<f64, f64>> = (0..presets::GPU_MEMORY_ITEMS as u32 + 1)
            .map(|i| Triplet::new(i, i + 1, 0.0, 0.0, 1.0))
            .collect();
        let mut out = Vec::new();
        let result = execute_share(&mut daemon, &Relax, &triplets, triplets.len(), 0, &mut out);
        match result {
            Err(RuntimeError::Kernel { daemon, .. }) => assert_eq!(daemon, "g"),
            other => panic!("expected a kernel error, got {other:?}"),
        }
    }

    #[test]
    fn work_splits_across_daemons_by_capacity() {
        let gpu = presets::gpu_v100("gpu");
        let cpu = presets::cpu_xeon_20c("cpu");
        let capacities = vec![gpu.capacity_factor(), cpu.capacity_factor()];
        let shares = split_by_capacity(100, &capacities);
        assert_eq!(shares.len(), 2);
        assert_eq!(shares[0].len() + shares[1].len(), 100);
        // Contiguous cover of 0..100 in daemon order.
        assert_eq!(shares[0].start, 0);
        assert_eq!(shares[0].end, shares[1].start);
        assert_eq!(shares[1].end, 100);
        // The GPU daemon (higher capacity factor) gets the larger share.
        assert!(shares[0].len() > shares[1].len());
    }

    #[test]
    fn split_ranges_cover_exactly_even_with_rounding() {
        for d in [0usize, 1, 7, 100, 101] {
            for capacities in [vec![1.0], vec![3.0, 1.0, 1.0], vec![0.5; 7]] {
                let shares = split_by_capacity(d, &capacities);
                assert_eq!(shares.len(), capacities.len());
                let mut expected_start = 0usize;
                for share in &shares {
                    assert_eq!(share.start, expected_start);
                    expected_start = share.end;
                }
                assert_eq!(expected_start, d, "{d} items over {capacities:?}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn split_requires_a_capacity_when_there_is_work() {
        let _ = split_by_capacity(5, &[]);
    }

    #[test]
    fn split_of_nothing_needs_no_capacities() {
        assert!(split_by_capacity(0, &[]).is_empty());
    }

    #[test]
    #[should_panic]
    fn agent_requires_at_least_one_daemon() {
        let _: Agent<f64, f64, f64> = Agent::new(
            0,
            Vec::new(),
            RuntimeProfile::powergraph(),
            MiddlewareConfig::default(),
            10,
        );
    }
}
