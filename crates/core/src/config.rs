//! Middleware configuration.
//!
//! Every optimisation the paper studies can be toggled independently so the
//! evaluation harness can reproduce the ablations of §V (pipeline on/off/optimal,
//! caching on/off, skipping on/off, balancing on/off).  On top of the paper's
//! knobs, [`MiddlewareConfig::execution`] selects how the runtime schedules
//! the work on the host: [`ExecutionMode::Threaded`] (the default) runs every
//! daemon on its own worker thread and every node's agent on its own scoped
//! thread; [`ExecutionMode::Serial`] runs everything on the calling thread.
//! Results are identical in both modes.

use serde::{Deserialize, Serialize};

pub use gxplug_engine::cluster::ExecutionMode;

/// How the intra-iteration pipeline is configured (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PipelineMode {
    /// No pipeline parallelism: the original 5-step workflow, with the three
    /// phases running strictly one after another ("WithoutPipeline" in
    /// Fig. 10).
    Disabled,
    /// 3-layer pipeline with a fixed block size ("Pipeline" in Fig. 10).
    FixedBlockSize(usize),
    /// 3-layer pipeline with a fixed *number* of blocks per iteration.
    FixedBlockCount(usize),
    /// 3-layer pipeline with the optimal block size from Lemma 1
    /// ("Pipeline*" in Fig. 10).
    Optimal,
}

impl PipelineMode {
    /// Returns `true` if pipeline parallelism is enabled at all.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, PipelineMode::Disabled)
    }
}

/// Full middleware configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MiddlewareConfig {
    /// Intra-iteration optimisation: pipeline shuffle.
    pub pipeline: PipelineMode,
    /// Inter-iteration optimisation: LRU-based synchronization caching.
    pub caching: bool,
    /// Inter-iteration optimisation: lazy uploading through the global
    /// query/data queues (requires `caching`).
    pub lazy_upload: bool,
    /// Inter-iteration optimisation: synchronization skipping.
    pub skipping: bool,
    /// Fraction of a node's local vertices the agent cache may hold
    /// (in `(0, 1]`).
    pub cache_capacity_fraction: f64,
    /// How the runtime schedules daemons and agents on the host (threaded by
    /// default; serial execution produces identical results).
    pub execution: ExecutionMode,
}

impl Default for MiddlewareConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineMode::Optimal,
            caching: true,
            lazy_upload: true,
            skipping: true,
            cache_capacity_fraction: 0.5,
            execution: ExecutionMode::Threaded,
        }
    }
}

impl MiddlewareConfig {
    /// The fully optimised configuration (the default).
    pub fn optimized() -> Self {
        Self::default()
    }

    /// A configuration with every optimisation disabled: the naive
    /// daemon-agent integration the paper's ablations compare against
    /// (single-threaded, like the naive integration's blocking calls).
    pub fn baseline() -> Self {
        Self {
            pipeline: PipelineMode::Disabled,
            caching: false,
            lazy_upload: false,
            skipping: false,
            cache_capacity_fraction: 0.5,
            execution: ExecutionMode::Serial,
        }
    }

    /// Enables or disables the pipeline.
    pub fn with_pipeline(mut self, pipeline: PipelineMode) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Enables or disables synchronization caching (and lazy uploading with
    /// it).
    pub fn with_caching(mut self, caching: bool) -> Self {
        self.caching = caching;
        if !caching {
            self.lazy_upload = false;
        }
        self
    }

    /// Enables or disables synchronization skipping.
    pub fn with_skipping(mut self, skipping: bool) -> Self {
        self.skipping = skipping;
        self
    }

    /// Selects serial or threaded execution of daemons and agents.
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// Sets the cache capacity fraction.
    ///
    /// # Panics
    /// Panics if the fraction is not in `(0, 1]`.
    pub fn with_cache_capacity_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "cache capacity fraction must be in (0, 1], got {fraction}"
        );
        self.cache_capacity_fraction = fraction;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_every_optimisation() {
        let config = MiddlewareConfig::default();
        assert!(config.pipeline.is_enabled());
        assert!(config.caching);
        assert!(config.lazy_upload);
        assert!(config.skipping);
    }

    #[test]
    fn baseline_disables_everything() {
        let config = MiddlewareConfig::baseline();
        assert!(!config.pipeline.is_enabled());
        assert!(!config.caching);
        assert!(!config.lazy_upload);
        assert!(!config.skipping);
    }

    #[test]
    fn disabling_caching_also_disables_lazy_upload() {
        let config = MiddlewareConfig::optimized().with_caching(false);
        assert!(!config.caching);
        assert!(!config.lazy_upload);
    }

    #[test]
    fn builder_methods_compose() {
        let config = MiddlewareConfig::baseline()
            .with_pipeline(PipelineMode::FixedBlockSize(512))
            .with_skipping(true)
            .with_cache_capacity_fraction(0.25);
        assert_eq!(config.pipeline, PipelineMode::FixedBlockSize(512));
        assert!(config.skipping);
        assert_eq!(config.cache_capacity_fraction, 0.25);
    }

    #[test]
    #[should_panic]
    fn invalid_cache_fraction_is_rejected() {
        let _ = MiddlewareConfig::default().with_cache_capacity_fraction(0.0);
    }

    #[test]
    fn execution_mode_defaults_and_overrides() {
        assert_eq!(
            MiddlewareConfig::default().execution,
            ExecutionMode::Threaded
        );
        assert_eq!(
            MiddlewareConfig::baseline().execution,
            ExecutionMode::Serial
        );
        let config = MiddlewareConfig::baseline().with_execution(ExecutionMode::Threaded);
        assert_eq!(config.execution, ExecutionMode::Threaded);
    }
}
