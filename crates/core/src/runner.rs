//! End-to-end accelerated execution.
//!
//! The runner wires everything together: it builds a simulated cluster from a
//! graph and a partitioning, creates one [`Agent`] per distributed node with
//! the daemons (devices) assigned to that node, and drives the iteration loop
//! through the engine's cluster driver — so native and accelerated runs share
//! the same synchronisation, activity tracking and metric collection and are
//! compared apples to apples.

use crate::agent::Agent;
use crate::config::MiddlewareConfig;
use crate::daemon::Daemon;
use crate::metrics::AgentStats;
use gxplug_accel::{Device, DeviceKind, SimDuration};
use gxplug_engine::cluster::{Cluster, SyncPolicy};
use gxplug_engine::metrics::RunReport;
use gxplug_engine::network::NetworkModel;
use gxplug_engine::profile::RuntimeProfile;
use gxplug_engine::template::GraphAlgorithm;
use gxplug_graph::graph::PropertyGraph;
use gxplug_graph::partition::Partitioning;
use gxplug_ipc::key::KeyGenerator;

/// The outcome of an accelerated (or native) run.
#[derive(Debug, Clone)]
pub struct RunOutcome<V> {
    /// The cluster-level report (iterations, timing, convergence).
    pub report: RunReport,
    /// Per-agent middleware statistics (empty for native runs).
    pub agent_stats: Vec<AgentStats>,
    /// The final vertex values collected from the master copies.
    pub values: Vec<V>,
}

/// Builds a human-readable system label such as `"PowerGraph+GPU"` from the
/// devices plugged into each node.
pub fn system_label(profile: &RuntimeProfile, devices_per_node: &[Vec<Device>]) -> String {
    let mut has_gpu = false;
    let mut has_cpu = false;
    let mut has_fpga = false;
    for device in devices_per_node.iter().flatten() {
        match device.kind() {
            DeviceKind::Gpu => has_gpu = true,
            DeviceKind::Cpu => has_cpu = true,
            DeviceKind::Fpga => has_fpga = true,
        }
    }
    let accel = match (has_gpu, has_cpu, has_fpga) {
        (true, false, false) => "GPU",
        (false, true, false) => "CPU",
        (false, false, true) => "FPGA",
        (false, false, false) => return profile.name.to_string(),
        _ => "Mixed",
    };
    format!("{}+{}", profile.name, accel)
}

/// Runs `algorithm` natively (no accelerators) on a simulated cluster.
pub fn run_native<V, E, A>(
    graph: &PropertyGraph<V, E>,
    partitioning: Partitioning,
    algorithm: &A,
    profile: RuntimeProfile,
    network: NetworkModel,
    dataset: &str,
    max_iterations: usize,
) -> RunOutcome<V>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    A: GraphAlgorithm<V, E>,
{
    let mut cluster = Cluster::build(graph, partitioning, algorithm, profile, network);
    let report = cluster.run_native(algorithm, dataset, max_iterations);
    let values = cluster.collect_values();
    RunOutcome {
        report,
        agent_stats: Vec::new(),
        values,
    }
}

/// Runs `algorithm` through the GX-Plug middleware: one agent per distributed
/// node, with the devices in `devices_per_node[j]` plugged into node `j` as
/// daemons.
///
/// # Panics
/// Panics if `devices_per_node` does not have one (possibly empty is not
/// allowed) device list per partition.
#[allow(clippy::too_many_arguments)]
pub fn run_accelerated<V, E, A>(
    graph: &PropertyGraph<V, E>,
    partitioning: Partitioning,
    algorithm: &A,
    profile: RuntimeProfile,
    network: NetworkModel,
    devices_per_node: Vec<Vec<Device>>,
    config: MiddlewareConfig,
    dataset: &str,
    max_iterations: usize,
) -> RunOutcome<V>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    A: GraphAlgorithm<V, E>,
{
    assert_eq!(
        devices_per_node.len(),
        partitioning.num_parts(),
        "one device list per distributed node is required"
    );
    assert!(
        devices_per_node.iter().all(|d| !d.is_empty()),
        "every node needs at least one accelerator to run accelerated"
    );
    let system = system_label(&profile, &devices_per_node);
    let mut cluster = Cluster::build(graph, partitioning, algorithm, profile, network);

    // One agent per node, one daemon per device, with System-V-style keys.
    let key_generator = KeyGenerator::new(0xC1);
    let mut agents: Vec<Agent<V>> = devices_per_node
        .into_iter()
        .enumerate()
        .map(|(node_id, devices)| {
            let daemons: Vec<Daemon> = devices
                .into_iter()
                .enumerate()
                .map(|(daemon_index, device)| {
                    let key = key_generator.key_for(node_id, daemon_index);
                    Daemon::new(
                        format!("node{node_id}-daemon{daemon_index}"),
                        device,
                        key,
                    )
                })
                .collect();
            Agent::new(
                node_id,
                daemons,
                profile,
                config,
                cluster.node(node_id).num_vertices(),
            )
        })
        .collect();

    // connect(): device contexts are initialised once, in parallel across
    // nodes, so the setup cost is the slowest node's initialisation.
    let setup = agents
        .iter_mut()
        .map(Agent::connect)
        .fold(SimDuration::ZERO, SimDuration::max);

    let sync_policy = if config.skipping {
        SyncPolicy::SkipWhenLocal
    } else {
        SyncPolicy::AlwaysSync
    };
    let report = cluster.run_custom(
        algorithm,
        dataset,
        &system,
        max_iterations,
        sync_policy,
        setup,
        |node, iteration| agents[node.id()].process_iteration(node, algorithm, iteration),
    );
    let values = cluster.collect_values();
    let agent_stats = agents.iter().map(Agent::stats).collect();
    for agent in &mut agents {
        agent.disconnect();
    }
    RunOutcome {
        report,
        agent_stats,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineMode;
    use gxplug_accel::presets;
    use gxplug_engine::template::AddressedMessage;
    use gxplug_graph::generators::{Generator, Rmat};
    use gxplug_graph::partition::{GreedyVertexCutPartitioner, Partitioner};
    use gxplug_graph::types::{Triplet, VertexId};

    struct Sssp {
        sources: Vec<VertexId>,
    }

    impl GraphAlgorithm<f64, f64> for Sssp {
        type Msg = f64;
        fn init_vertex(&self, v: VertexId, _d: usize) -> f64 {
            if self.sources.contains(&v) {
                0.0
            } else {
                f64::INFINITY
            }
        }
        fn msg_gen(&self, t: &Triplet<f64, f64>, _i: usize) -> Vec<AddressedMessage<f64>> {
            if t.src_attr.is_finite() {
                vec![AddressedMessage::new(t.dst, t.src_attr + t.edge_attr)]
            } else {
                Vec::new()
            }
        }
        fn msg_merge(&self, a: f64, b: f64) -> f64 {
            a.min(b)
        }
        fn msg_apply(&self, _v: VertexId, cur: &f64, msg: &f64, _i: usize) -> Option<f64> {
            (msg + 1e-12 < *cur).then_some(*msg)
        }
        fn initial_active(&self, _n: usize) -> Option<Vec<VertexId>> {
            Some(self.sources.clone())
        }
        fn name(&self) -> &'static str {
            "sssp-bf"
        }
    }

    fn test_graph() -> PropertyGraph<f64, f64> {
        let list = Rmat::new(11, 8.0).generate(11);
        PropertyGraph::from_edge_list(list, f64::INFINITY).unwrap()
    }

    fn gpus_per_node(nodes: usize, per_node: usize) -> Vec<Vec<Device>> {
        (0..nodes)
            .map(|n| {
                (0..per_node)
                    .map(|g| presets::gpu_v100(format!("n{n}g{g}")))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn accelerated_run_matches_native_results() {
        let graph = test_graph();
        let algorithm = Sssp { sources: vec![0] };
        let parts = 3;
        let partitioning = GreedyVertexCutPartitioner::default()
            .partition(&graph, parts)
            .unwrap();
        let native = run_native(
            &graph,
            partitioning.clone(),
            &algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            "rmat",
            200,
        );
        let accelerated = run_accelerated(
            &graph,
            partitioning,
            &algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            gpus_per_node(parts, 1),
            MiddlewareConfig::default(),
            "rmat",
            200,
        );
        assert!(native.report.converged);
        assert!(accelerated.report.converged);
        assert_eq!(native.values.len(), accelerated.values.len());
        for (v, (a, b)) in native.values.iter().zip(&accelerated.values).enumerate() {
            let same = (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9;
            assert!(same, "vertex {v}: native {a} vs accelerated {b}");
        }
    }

    #[test]
    fn gpu_acceleration_beats_native_powergraph() {
        let graph = test_graph();
        let algorithm = Sssp { sources: vec![0, 1, 2, 3] };
        let parts = 2;
        let partitioning = GreedyVertexCutPartitioner::default()
            .partition(&graph, parts)
            .unwrap();
        let native = run_native(
            &graph,
            partitioning.clone(),
            &algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            "rmat",
            200,
        );
        let accelerated = run_accelerated(
            &graph,
            partitioning,
            &algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            gpus_per_node(parts, 1),
            MiddlewareConfig::default(),
            "rmat",
            200,
        );
        // Compare iteration time excluding the one-off GPU initialisation
        // (which amortises over long runs; this test graph is small).
        let native_iter_time = native.report.total_time();
        let accel_iter_time = accelerated.report.total_time() - accelerated.report.setup;
        assert!(
            accel_iter_time < native_iter_time,
            "accelerated {accel_iter_time:?} should beat native {native_iter_time:?}"
        );
        assert_eq!(accelerated.report.system, "PowerGraph+GPU");
    }

    #[test]
    fn agent_stats_are_collected_per_node() {
        let graph = test_graph();
        let algorithm = Sssp { sources: vec![0] };
        let partitioning = GreedyVertexCutPartitioner::default()
            .partition(&graph, 2)
            .unwrap();
        let outcome = run_accelerated(
            &graph,
            partitioning,
            &algorithm,
            RuntimeProfile::graphx(),
            NetworkModel::datacenter(),
            gpus_per_node(2, 2),
            MiddlewareConfig::default().with_pipeline(PipelineMode::Optimal),
            "rmat",
            200,
        );
        assert_eq!(outcome.agent_stats.len(), 2);
        let total_triplets: u64 = outcome
            .agent_stats
            .iter()
            .map(|s| s.triplets_processed)
            .sum();
        assert_eq!(total_triplets as usize, outcome.report.total_triplets());
        assert!(outcome.report.setup > SimDuration::ZERO);
        assert_eq!(outcome.report.system, "GraphX+GPU");
    }

    #[test]
    fn system_labels_follow_device_mix() {
        let profile = RuntimeProfile::powergraph();
        assert_eq!(system_label(&profile, &[]), "PowerGraph");
        assert_eq!(
            system_label(&profile, &[vec![presets::gpu_v100("g")]]),
            "PowerGraph+GPU"
        );
        assert_eq!(
            system_label(&profile, &[vec![presets::cpu_xeon_20c("c")]]),
            "PowerGraph+CPU"
        );
        assert_eq!(
            system_label(
                &profile,
                &[vec![presets::gpu_v100("g"), presets::cpu_xeon_20c("c")]]
            ),
            "PowerGraph+Mixed"
        );
    }

    #[test]
    #[should_panic]
    fn device_list_length_must_match_partition_count() {
        let graph = test_graph();
        let algorithm = Sssp { sources: vec![0] };
        let partitioning = GreedyVertexCutPartitioner::default()
            .partition(&graph, 3)
            .unwrap();
        let _ = run_accelerated(
            &graph,
            partitioning,
            &algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            gpus_per_node(2, 1),
            MiddlewareConfig::default(),
            "rmat",
            10,
        );
    }
}
