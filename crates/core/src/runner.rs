//! End-to-end accelerated execution.
//!
//! The runner wires everything together: it builds a simulated cluster from a
//! graph and a partitioning, creates one agent per distributed node with the
//! daemons (devices) assigned to that node, and drives the iteration loop
//! through the engine's cluster driver — so native and accelerated runs share
//! the same synchronisation, activity tracking and metric collection and are
//! compared apples to apples.
//!
//! [`MiddlewareConfig::execution`] selects the runtime: in the default
//! [`ExecutionMode::Threaded`], every daemon runs on its own worker thread
//! ([`crate::runtime::DaemonHandle`]) and every node's compute phase runs on
//! its own scoped thread per superstep ([`crate::runtime::ThreadedNodes`]);
//! [`ExecutionMode::Serial`] drives the same logic on the calling thread.
//! The two modes produce bit-identical results.

use crate::agent::Agent;
use crate::config::{ExecutionMode, MiddlewareConfig};
use crate::daemon::Daemon;
use crate::metrics::AgentStats;
use crate::runtime::{ThreadedAgent, ThreadedNodes};
use gxplug_accel::{Device, DeviceKind, SimDuration};
use gxplug_engine::cluster::{Cluster, SyncPolicy};
use gxplug_engine::metrics::RunReport;
use gxplug_engine::network::NetworkModel;
use gxplug_engine::profile::RuntimeProfile;
use gxplug_engine::template::GraphAlgorithm;
use gxplug_graph::graph::PropertyGraph;
use gxplug_graph::partition::Partitioning;
use gxplug_ipc::key::KeyGenerator;
use std::thread;

/// The outcome of an accelerated (or native) run.
#[derive(Debug, Clone)]
pub struct RunOutcome<V> {
    /// The cluster-level report (iterations, timing, convergence).
    pub report: RunReport,
    /// Per-agent middleware statistics (empty for native runs).
    pub agent_stats: Vec<AgentStats>,
    /// The final vertex values collected from the master copies.
    pub values: Vec<V>,
}

/// Builds a human-readable system label such as `"PowerGraph+GPU"` from the
/// devices plugged into each node.
pub fn system_label(profile: &RuntimeProfile, devices_per_node: &[Vec<Device>]) -> String {
    let mut has_gpu = false;
    let mut has_cpu = false;
    let mut has_fpga = false;
    for device in devices_per_node.iter().flatten() {
        match device.kind() {
            DeviceKind::Gpu => has_gpu = true,
            DeviceKind::Cpu => has_cpu = true,
            DeviceKind::Fpga => has_fpga = true,
        }
    }
    let accel = match (has_gpu, has_cpu, has_fpga) {
        (true, false, false) => "GPU",
        (false, true, false) => "CPU",
        (false, false, true) => "FPGA",
        (false, false, false) => return profile.name.to_string(),
        _ => "Mixed",
    };
    format!("{}+{}", profile.name, accel)
}

/// Runs `algorithm` natively (no accelerators) on a simulated cluster, with
/// the nodes of each superstep computing concurrently (the default
/// [`ExecutionMode::Threaded`]).
pub fn run_native<V, E, A>(
    graph: &PropertyGraph<V, E>,
    partitioning: Partitioning,
    algorithm: &A,
    profile: RuntimeProfile,
    network: NetworkModel,
    dataset: &str,
    max_iterations: usize,
) -> RunOutcome<V>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    A: GraphAlgorithm<V, E>,
{
    run_native_mode(
        graph,
        partitioning,
        algorithm,
        profile,
        network,
        dataset,
        max_iterations,
        ExecutionMode::default(),
    )
}

/// [`run_native`] with an explicit [`ExecutionMode`].
#[allow(clippy::too_many_arguments)]
pub fn run_native_mode<V, E, A>(
    graph: &PropertyGraph<V, E>,
    partitioning: Partitioning,
    algorithm: &A,
    profile: RuntimeProfile,
    network: NetworkModel,
    dataset: &str,
    max_iterations: usize,
    mode: ExecutionMode,
) -> RunOutcome<V>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    A: GraphAlgorithm<V, E>,
{
    let mut cluster = Cluster::build(graph, partitioning, algorithm, profile, network);
    let report = cluster.run_native_mode(algorithm, dataset, max_iterations, mode);
    let values = cluster.collect_values();
    RunOutcome {
        report,
        agent_stats: Vec::new(),
        values,
    }
}

/// Builds the named daemons of one node from its device list.
fn daemons_for_node(
    key_generator: &KeyGenerator,
    node_id: usize,
    devices: Vec<Device>,
) -> Vec<Daemon> {
    devices
        .into_iter()
        .enumerate()
        .map(|(daemon_index, device)| {
            let key = key_generator.key_for(node_id, daemon_index);
            Daemon::new(format!("node{node_id}-daemon{daemon_index}"), device, key)
        })
        .collect()
}

/// Runs `algorithm` through the GX-Plug middleware: one agent per distributed
/// node, with the devices in `devices_per_node[j]` plugged into node `j` as
/// daemons.
///
/// `config.execution` selects the runtime.  In the default
/// [`ExecutionMode::Threaded`], every daemon computes on its own worker
/// thread and nodes advance in parallel within each superstep; results are
/// bit-identical to [`ExecutionMode::Serial`].
///
/// # Panics
/// Panics if `devices_per_node` does not have one (possibly empty is not
/// allowed) device list per partition, or if a daemon worker panics while
/// computing (the worker's panic is propagated).
#[allow(clippy::too_many_arguments)]
pub fn run_accelerated<V, E, A>(
    graph: &PropertyGraph<V, E>,
    partitioning: Partitioning,
    algorithm: &A,
    profile: RuntimeProfile,
    network: NetworkModel,
    devices_per_node: Vec<Vec<Device>>,
    config: MiddlewareConfig,
    dataset: &str,
    max_iterations: usize,
) -> RunOutcome<V>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    A: GraphAlgorithm<V, E>,
{
    assert_eq!(
        devices_per_node.len(),
        partitioning.num_parts(),
        "one device list per distributed node is required"
    );
    assert!(
        devices_per_node.iter().all(|d| !d.is_empty()),
        "every node needs at least one accelerator to run accelerated"
    );
    let system = system_label(&profile, &devices_per_node);
    let mut cluster = Cluster::build(graph, partitioning, algorithm, profile, network);
    let sync_policy = if config.skipping {
        SyncPolicy::SkipWhenLocal
    } else {
        SyncPolicy::AlwaysSync
    };
    let key_generator = KeyGenerator::new(0xC1);

    let (report, agent_stats) = match config.execution {
        ExecutionMode::Serial => run_agents_serial(
            &mut cluster,
            algorithm,
            profile,
            config,
            devices_per_node,
            &key_generator,
            dataset,
            &system,
            max_iterations,
            sync_policy,
        ),
        ExecutionMode::Threaded => run_agents_threaded(
            &mut cluster,
            algorithm,
            profile,
            config,
            devices_per_node,
            &key_generator,
            dataset,
            &system,
            max_iterations,
            sync_policy,
        ),
    };
    let values = cluster.collect_values();
    RunOutcome {
        report,
        agent_stats,
        values,
    }
}

/// The serial middleware path: agents own their daemons and drive them on the
/// calling thread.
#[allow(clippy::too_many_arguments)]
fn run_agents_serial<V, E, A>(
    cluster: &mut Cluster<V, E>,
    algorithm: &A,
    profile: RuntimeProfile,
    config: MiddlewareConfig,
    devices_per_node: Vec<Vec<Device>>,
    key_generator: &KeyGenerator,
    dataset: &str,
    system: &str,
    max_iterations: usize,
    sync_policy: SyncPolicy,
) -> (RunReport, Vec<AgentStats>)
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    A: GraphAlgorithm<V, E>,
{
    let mut agents: Vec<Agent<V>> = devices_per_node
        .into_iter()
        .enumerate()
        .map(|(node_id, devices)| {
            Agent::new(
                node_id,
                daemons_for_node(key_generator, node_id, devices),
                profile,
                config,
                cluster.node(node_id).num_vertices(),
            )
        })
        .collect();

    // connect(): device contexts are initialised once, in parallel across
    // nodes, so the setup cost is the slowest node's initialisation.
    let setup = agents
        .iter_mut()
        .map(Agent::connect)
        .fold(SimDuration::ZERO, SimDuration::max);

    let report = cluster.run_custom(
        algorithm,
        dataset,
        system,
        max_iterations,
        sync_policy,
        setup,
        |node, iteration| agents[node.id()].process_iteration(node, algorithm, iteration),
    );
    let agent_stats = agents.iter().map(Agent::stats).collect();
    for agent in &mut agents {
        agent.disconnect();
    }
    (report, agent_stats)
}

/// The threaded middleware path: a scoped thread per daemon for the whole
/// run, plus a scoped thread per node within each superstep.
#[allow(clippy::too_many_arguments)]
fn run_agents_threaded<V, E, A>(
    cluster: &mut Cluster<V, E>,
    algorithm: &A,
    profile: RuntimeProfile,
    config: MiddlewareConfig,
    devices_per_node: Vec<Vec<Device>>,
    key_generator: &KeyGenerator,
    dataset: &str,
    system: &str,
    max_iterations: usize,
    sync_policy: SyncPolicy,
) -> (RunReport, Vec<AgentStats>)
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    A: GraphAlgorithm<V, E>,
{
    thread::scope(|scope| {
        let mut agents: Vec<ThreadedAgent<'_, '_, V>> = devices_per_node
            .into_iter()
            .enumerate()
            .map(|(node_id, devices)| {
                ThreadedAgent::spawn(
                    scope,
                    node_id,
                    daemons_for_node(key_generator, node_id, devices),
                    profile,
                    config,
                    cluster.node(node_id).num_vertices(),
                )
            })
            .collect();

        let setup = agents
            .iter_mut()
            .map(ThreadedAgent::connect)
            .fold(SimDuration::ZERO, SimDuration::max);

        let mut phase = ThreadedNodes {
            agents: &mut agents,
            algorithm,
        };
        let report = cluster.run_phased(
            algorithm,
            dataset,
            system,
            max_iterations,
            sync_policy,
            setup,
            &mut phase,
        );
        let agent_stats = agents.iter().map(ThreadedAgent::stats).collect();
        for agent in &mut agents {
            agent.disconnect();
        }
        // Join every daemon worker; a worker that panicked re-raises here.
        for agent in agents {
            let _daemons = agent.join();
        }
        (report, agent_stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineMode;
    use gxplug_accel::presets;
    use gxplug_engine::template::AddressedMessage;
    use gxplug_graph::generators::{Generator, Rmat};
    use gxplug_graph::partition::{GreedyVertexCutPartitioner, Partitioner};
    use gxplug_graph::types::{Triplet, VertexId};

    struct Sssp {
        sources: Vec<VertexId>,
    }

    impl GraphAlgorithm<f64, f64> for Sssp {
        type Msg = f64;
        fn init_vertex(&self, v: VertexId, _d: usize) -> f64 {
            if self.sources.contains(&v) {
                0.0
            } else {
                f64::INFINITY
            }
        }
        fn msg_gen(&self, t: &Triplet<f64, f64>, _i: usize) -> Vec<AddressedMessage<f64>> {
            if t.src_attr.is_finite() {
                vec![AddressedMessage::new(t.dst, t.src_attr + t.edge_attr)]
            } else {
                Vec::new()
            }
        }
        fn msg_merge(&self, a: f64, b: f64) -> f64 {
            a.min(b)
        }
        fn msg_apply(&self, _v: VertexId, cur: &f64, msg: &f64, _i: usize) -> Option<f64> {
            (msg + 1e-12 < *cur).then_some(*msg)
        }
        fn initial_active(&self, _n: usize) -> Option<Vec<VertexId>> {
            Some(self.sources.clone())
        }
        fn name(&self) -> &'static str {
            "sssp-bf"
        }
    }

    fn test_graph() -> PropertyGraph<f64, f64> {
        let list = Rmat::new(11, 8.0).generate(11);
        PropertyGraph::from_edge_list(list, f64::INFINITY).unwrap()
    }

    fn gpus_per_node(nodes: usize, per_node: usize) -> Vec<Vec<Device>> {
        (0..nodes)
            .map(|n| {
                (0..per_node)
                    .map(|g| presets::gpu_v100(format!("n{n}g{g}")))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn accelerated_run_matches_native_results() {
        let graph = test_graph();
        let algorithm = Sssp { sources: vec![0] };
        let parts = 3;
        let partitioning = GreedyVertexCutPartitioner::default()
            .partition(&graph, parts)
            .unwrap();
        let native = run_native(
            &graph,
            partitioning.clone(),
            &algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            "rmat",
            200,
        );
        let accelerated = run_accelerated(
            &graph,
            partitioning,
            &algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            gpus_per_node(parts, 1),
            MiddlewareConfig::default(),
            "rmat",
            200,
        );
        assert!(native.report.converged);
        assert!(accelerated.report.converged);
        assert_eq!(native.values.len(), accelerated.values.len());
        for (v, (a, b)) in native.values.iter().zip(&accelerated.values).enumerate() {
            let same = (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9;
            assert!(same, "vertex {v}: native {a} vs accelerated {b}");
        }
    }

    #[test]
    fn gpu_acceleration_beats_native_powergraph() {
        let graph = test_graph();
        let algorithm = Sssp {
            sources: vec![0, 1, 2, 3],
        };
        let parts = 2;
        let partitioning = GreedyVertexCutPartitioner::default()
            .partition(&graph, parts)
            .unwrap();
        let native = run_native(
            &graph,
            partitioning.clone(),
            &algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            "rmat",
            200,
        );
        let accelerated = run_accelerated(
            &graph,
            partitioning,
            &algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            gpus_per_node(parts, 1),
            MiddlewareConfig::default(),
            "rmat",
            200,
        );
        // Compare iteration time excluding the one-off GPU initialisation
        // (which amortises over long runs; this test graph is small).
        let native_iter_time = native.report.total_time();
        let accel_iter_time = accelerated.report.total_time() - accelerated.report.setup;
        assert!(
            accel_iter_time < native_iter_time,
            "accelerated {accel_iter_time:?} should beat native {native_iter_time:?}"
        );
        assert_eq!(accelerated.report.system, "PowerGraph+GPU");
    }

    #[test]
    fn agent_stats_are_collected_per_node() {
        let graph = test_graph();
        let algorithm = Sssp { sources: vec![0] };
        let partitioning = GreedyVertexCutPartitioner::default()
            .partition(&graph, 2)
            .unwrap();
        let outcome = run_accelerated(
            &graph,
            partitioning,
            &algorithm,
            RuntimeProfile::graphx(),
            NetworkModel::datacenter(),
            gpus_per_node(2, 2),
            MiddlewareConfig::default().with_pipeline(PipelineMode::Optimal),
            "rmat",
            200,
        );
        assert_eq!(outcome.agent_stats.len(), 2);
        let total_triplets: u64 = outcome
            .agent_stats
            .iter()
            .map(|s| s.triplets_processed)
            .sum();
        assert_eq!(total_triplets as usize, outcome.report.total_triplets());
        assert!(outcome.report.setup > SimDuration::ZERO);
        assert_eq!(outcome.report.system, "GraphX+GPU");
    }

    #[test]
    fn system_labels_follow_device_mix() {
        let profile = RuntimeProfile::powergraph();
        assert_eq!(system_label(&profile, &[]), "PowerGraph");
        assert_eq!(
            system_label(&profile, &[vec![presets::gpu_v100("g")]]),
            "PowerGraph+GPU"
        );
        assert_eq!(
            system_label(&profile, &[vec![presets::cpu_xeon_20c("c")]]),
            "PowerGraph+CPU"
        );
        assert_eq!(
            system_label(
                &profile,
                &[vec![presets::gpu_v100("g"), presets::cpu_xeon_20c("c")]]
            ),
            "PowerGraph+Mixed"
        );
    }

    #[test]
    #[should_panic]
    fn device_list_length_must_match_partition_count() {
        let graph = test_graph();
        let algorithm = Sssp { sources: vec![0] };
        let partitioning = GreedyVertexCutPartitioner::default()
            .partition(&graph, 3)
            .unwrap();
        let _ = run_accelerated(
            &graph,
            partitioning,
            &algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            gpus_per_node(2, 1),
            MiddlewareConfig::default(),
            "rmat",
            10,
        );
    }
}
