//! Legacy one-shot runners, kept as thin wrappers over the session API.
//!
//! These free functions deploy a whole cluster — partition metadata, agents,
//! daemons, device contexts — run a single algorithm and tear everything
//! down again.  That wastes the deployment on every call, which is exactly
//! what the [`crate::session`] API fixes: build a
//! [`SessionBuilder`](crate::SessionBuilder) once and submit many runs to
//! the deployed [`Session`](crate::Session).
//!
//! New code should use the session API; these wrappers exist so downstream
//! callers migrate on their own schedule.  They panic on misconfiguration
//! (as they always did) where the builder returns typed
//! [`SessionError`](crate::SessionError)s.

use crate::config::{ExecutionMode, MiddlewareConfig};
use crate::session::{RunOutcome, SessionBuilder};
use gxplug_accel::DeviceSpec;
use gxplug_engine::network::NetworkModel;
use gxplug_engine::profile::RuntimeProfile;
use gxplug_engine::template::GraphAlgorithm;
use gxplug_graph::graph::PropertyGraph;
use gxplug_graph::partition::Partitioning;

pub use crate::session::system_label;

/// Runs `algorithm` natively (no accelerators) on a freshly deployed
/// cluster, with the nodes of each superstep computing concurrently (the
/// default [`ExecutionMode::Threaded`]).
#[deprecated(
    since = "0.2.0",
    note = "deploy a reusable `Session` with `SessionBuilder` and call `run_native` on it; \
            a session amortizes the deployment across runs"
)]
pub fn run_native<V, E, A>(
    graph: &PropertyGraph<V, E>,
    partitioning: Partitioning,
    algorithm: &A,
    profile: RuntimeProfile,
    network: NetworkModel,
    dataset: &str,
    max_iterations: usize,
) -> RunOutcome<V>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    A: GraphAlgorithm<V, E>,
{
    one_shot_native(
        graph,
        partitioning,
        algorithm,
        profile,
        network,
        dataset,
        max_iterations,
        ExecutionMode::default(),
    )
}

/// [`run_native`] with an explicit [`ExecutionMode`].
#[deprecated(
    since = "0.2.0",
    note = "deploy a reusable `Session` with `SessionBuilder` (the execution mode lives in \
            `MiddlewareConfig::execution`) and call `run_native` on it"
)]
#[allow(clippy::too_many_arguments)] // the legacy signature is the reason this API is deprecated
pub fn run_native_mode<V, E, A>(
    graph: &PropertyGraph<V, E>,
    partitioning: Partitioning,
    algorithm: &A,
    profile: RuntimeProfile,
    network: NetworkModel,
    dataset: &str,
    max_iterations: usize,
    mode: ExecutionMode,
) -> RunOutcome<V>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    A: GraphAlgorithm<V, E>,
{
    one_shot_native(
        graph,
        partitioning,
        algorithm,
        profile,
        network,
        dataset,
        max_iterations,
        mode,
    )
}

#[allow(clippy::too_many_arguments)] // internal trampoline sharing the legacy signatures above
fn one_shot_native<V, E, A>(
    graph: &PropertyGraph<V, E>,
    partitioning: Partitioning,
    algorithm: &A,
    profile: RuntimeProfile,
    network: NetworkModel,
    dataset: &str,
    max_iterations: usize,
    mode: ExecutionMode,
) -> RunOutcome<V>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    A: GraphAlgorithm<V, E>,
{
    let mut session = SessionBuilder::new(graph)
        .partitioned_by(partitioning)
        .profile(profile)
        .network(network)
        .config(MiddlewareConfig::default().with_execution(mode))
        .dataset(dataset)
        .max_iterations(max_iterations)
        .build()
        .unwrap_or_else(|error| panic!("{error}"));
    session.run_native(algorithm)
}

/// Runs `algorithm` through the GX-Plug middleware on a freshly deployed
/// cluster: one agent per distributed node, with the devices in
/// `devices_per_node[j]` plugged into node `j` as daemons.
///
/// # Panics
/// Panics if `devices_per_node` does not have one non-empty device list per
/// partition.  The session API reports these as typed
/// [`SessionError`](crate::SessionError)s instead.
#[deprecated(
    since = "0.2.0",
    note = "deploy a reusable `Session` with `SessionBuilder` and call `run` on it; \
            a session amortizes the deployment (cluster build + device init) across runs"
)]
#[allow(clippy::too_many_arguments)] // the legacy 9-argument signature is the reason this API is deprecated
pub fn run_accelerated<V, E, A>(
    graph: &PropertyGraph<V, E>,
    partitioning: Partitioning,
    algorithm: &A,
    profile: RuntimeProfile,
    network: NetworkModel,
    devices_per_node: Vec<Vec<DeviceSpec>>,
    config: MiddlewareConfig,
    dataset: &str,
    max_iterations: usize,
) -> RunOutcome<V>
where
    V: Clone + PartialEq + Send + Sync,
    E: Clone + Send + Sync,
    A: GraphAlgorithm<V, E>,
{
    let mut session = SessionBuilder::new(graph)
        .partitioned_by(partitioning)
        .profile(profile)
        .network(network)
        .devices(devices_per_node)
        .config(config)
        .dataset(dataset)
        .max_iterations(max_iterations)
        .build()
        .unwrap_or_else(|error| panic!("{error}"));
    session
        .run(algorithm)
        .unwrap_or_else(|error| panic!("{error}"))
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use gxplug_accel::presets;
    use gxplug_engine::template::AddressedMessage;
    use gxplug_graph::generators::{Generator, Rmat};
    use gxplug_graph::partition::{GreedyVertexCutPartitioner, Partitioner};
    use gxplug_graph::types::{Triplet, VertexId};

    struct Sssp {
        sources: Vec<VertexId>,
    }

    impl GraphAlgorithm<f64, f64> for Sssp {
        type Msg = f64;
        fn init_vertex(&self, v: VertexId, _d: usize) -> f64 {
            if self.sources.contains(&v) {
                0.0
            } else {
                f64::INFINITY
            }
        }
        fn msg_gen(&self, t: &Triplet<f64, f64>, _i: usize) -> Vec<AddressedMessage<f64>> {
            if t.src_attr.is_finite() {
                vec![AddressedMessage::new(t.dst, t.src_attr + t.edge_attr)]
            } else {
                Vec::new()
            }
        }
        fn msg_merge(&self, a: f64, b: f64) -> f64 {
            a.min(b)
        }
        fn msg_apply(&self, _v: VertexId, cur: &f64, msg: &f64, _i: usize) -> Option<f64> {
            (msg + 1e-12 < *cur).then_some(*msg)
        }
        fn initial_active(&self, _n: usize) -> Option<Vec<VertexId>> {
            Some(self.sources.clone())
        }
        fn name(&self) -> &'static str {
            "sssp-bf"
        }
    }

    fn test_graph() -> PropertyGraph<f64, f64> {
        let list = Rmat::new(10, 8.0).generate(11);
        PropertyGraph::from_edge_list(list, f64::INFINITY).unwrap()
    }

    #[test]
    fn legacy_wrappers_match_the_session_api() {
        let graph = test_graph();
        let algorithm = Sssp { sources: vec![0] };
        let parts = 2;
        let partitioning = GreedyVertexCutPartitioner::default()
            .partition(&graph, parts)
            .unwrap();
        let devices = || {
            (0..parts)
                .map(|n| vec![presets::gpu_v100(format!("n{n}g0"))])
                .collect::<Vec<_>>()
        };
        let legacy = run_accelerated(
            &graph,
            partitioning.clone(),
            &algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            devices(),
            MiddlewareConfig::default(),
            "rmat",
            200,
        );
        let mut session = SessionBuilder::new(&graph)
            .partitioned_by(partitioning.clone())
            .devices(devices())
            .dataset("rmat")
            .max_iterations(200)
            .build()
            .unwrap();
        let modern = session.run(&algorithm).unwrap();
        assert_eq!(legacy.report.iterations, modern.report.iterations);
        assert_eq!(legacy.report.setup, modern.report.setup);
        for (a, b) in legacy.values.iter().zip(&modern.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let legacy_native = run_native(
            &graph,
            partitioning,
            &algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            "rmat",
            200,
        );
        let modern_native = session.run_native(&algorithm);
        assert_eq!(
            legacy_native.report.iterations,
            modern_native.report.iterations
        );
    }

    #[test]
    #[should_panic]
    fn device_list_length_must_match_partition_count() {
        let graph = test_graph();
        let algorithm = Sssp { sources: vec![0] };
        let partitioning = GreedyVertexCutPartitioner::default()
            .partition(&graph, 3)
            .unwrap();
        let _ = run_accelerated(
            &graph,
            partitioning,
            &algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            vec![
                vec![presets::gpu_v100("n0g0")],
                vec![presets::gpu_v100("n1g0")],
            ],
            MiddlewareConfig::default(),
            "rmat",
            10,
        );
    }
}
