//! The runnable pipeline-shuffle mechanism.
//!
//! Two implementations are provided:
//!
//! * [`run_pipeline`] — a straightforward three-thread pipeline
//!   (`Thread.Download` / `Thread.Compute` / `Thread.Upload`) connected by
//!   single-slot channels.  Blocks are moved (pointer copies), never cloned,
//!   which is exactly the "shuffle" idea: the data stays in place and only the
//!   references rotate between layers.
//! * [`run_shuffle_protocol`] — a literal rendition of Algorithms 1 and 2:
//!   an agent thread and a daemon thread share three memory zones through
//!   [`SharedSegment`]s, rotate the `n`/`c`/`u` pointers on every cycle and
//!   coordinate with `ExchangeFinished` / `RotateFinished` /
//!   `ComputeFinished` / `ComputeAllFinished` control messages.
//!
//! Both are built entirely on `std` scoped threads and the `Send + Sync`
//! primitives of `gxplug-ipc`, the same substrate the threaded daemon
//! runtime ([`crate::runtime`]) runs on.  The benchmark harness uses the
//! analytic model of [`super::block_size`] for host-independent timing; these
//! implementations exist to prove the mechanism works and to exercise the
//! IPC substrate end to end.

use gxplug_ipc::channel::{control_link_pair, ControlLink};
use gxplug_ipc::messages::ControlMessage;
use gxplug_ipc::segment::{SegmentPool, SharedSegment};
use std::sync::mpsc::sync_channel;
use std::thread;

/// Statistics of one pipeline execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineRunStats {
    /// Number of blocks processed.
    pub blocks: usize,
    /// Number of items processed.
    pub items: usize,
    /// Number of pointer rotations performed (protocol variant only).
    pub rotations: usize,
    /// Number of control messages exchanged (protocol variant only).
    pub control_messages: usize,
}

/// Runs `blocks` through a download → compute → upload pipeline using three
/// OS threads and single-slot hand-off channels.
///
/// `compute` maps each item; `upload` receives each computed block in order.
/// Returns statistics about the run.
pub fn run_pipeline<T, R, C, U>(blocks: Vec<Vec<T>>, compute: C, mut upload: U) -> PipelineRunStats
where
    T: Send,
    R: Send,
    C: Fn(&T) -> R + Send + Sync,
    U: FnMut(Vec<R>) + Send,
{
    let stats = PipelineRunStats {
        blocks: blocks.len(),
        items: blocks.iter().map(Vec::len).sum(),
        ..Default::default()
    };
    if blocks.is_empty() {
        return stats;
    }
    // Single-slot channels model the single in-flight block per layer of the
    // rotation scheme.
    let (to_compute_tx, to_compute_rx) = sync_channel::<Vec<T>>(1);
    let (to_upload_tx, to_upload_rx) = sync_channel::<Vec<R>>(1);
    // Scoped threads: panics propagate when the scope joins, and the closures
    // may borrow `compute` without `'static` gymnastics.
    thread::scope(|scope| {
        // Thread.Download: feeds blocks into the compute layer.
        scope.spawn(move || {
            for block in blocks {
                if to_compute_tx.send(block).is_err() {
                    return;
                }
            }
        });
        // Thread.Compute: transforms each block and hands it to the uploader.
        let compute_ref = &compute;
        scope.spawn(move || {
            for block in to_compute_rx.iter() {
                let out: Vec<R> = block.iter().map(compute_ref).collect();
                if to_upload_tx.send(out).is_err() {
                    return;
                }
            }
        });
        // Thread.Upload runs on the calling thread.
        for block in to_upload_rx.iter() {
            upload(block);
        }
    });
    stats
}

/// Role a zone currently plays in the rotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ZonePointers {
    /// Zone receiving newly downloaded data (`n`).
    n: usize,
    /// Zone being computed (`c`).
    c: usize,
    /// Zone waiting for upload (`u`).
    u: usize,
}

impl ZonePointers {
    fn rotate(&mut self) {
        // n → c → u → n.
        let old = *self;
        self.c = old.n;
        self.u = old.c;
        self.n = old.u;
    }
}

/// Runs the full agent/daemon shuffle protocol of Algorithms 1 and 2 over
/// `blocks`, computing each item in place with `compute`.
///
/// The daemon side runs on its own thread; the agent side runs on the calling
/// thread.  Returns the computed blocks in download order plus run statistics.
///
/// The three zones are attached through a private [`SegmentPool`] for daemon
/// 0 of node 0; use [`run_shuffle_protocol_sharded`] to place several
/// concurrent protocol runs on their own per-`(node, daemon)` shards of one
/// pool.
pub fn run_shuffle_protocol<T, C>(
    blocks: Vec<Vec<T>>,
    compute: C,
) -> (Vec<Vec<T>>, PipelineRunStats)
where
    T: Clone + Send + Sync + 'static,
    C: Fn(&T) -> T + Send + Sync,
{
    let pool = SegmentPool::new(0);
    run_shuffle_protocol_sharded(&pool, 0, 0, blocks, compute)
}

/// [`run_shuffle_protocol`] with the three memory zones attached from
/// `pool`, sharded under the `(node_id, daemon_index)` key.
///
/// Every daemon's protocol run gets its *own* three zones (derived as
/// sub-keys of its System-V key), each with its own lock — concurrent
/// daemons of one node rotate their pipelines without ever contending on a
/// shared segment mutex.
pub fn run_shuffle_protocol_sharded<T, C>(
    pool: &SegmentPool<T>,
    node_id: usize,
    daemon_index: usize,
    blocks: Vec<Vec<T>>,
    compute: C,
) -> (Vec<Vec<T>>, PipelineRunStats)
where
    T: Clone + Send + Sync + 'static,
    C: Fn(&T) -> T + Send + Sync,
{
    // An empty block is indistinguishable from "no more data" in the zone
    // rotation, so drop empties up front.
    let blocks: Vec<Vec<T>> = blocks.into_iter().filter(|b| !b.is_empty()).collect();
    let mut stats = PipelineRunStats {
        blocks: blocks.len(),
        items: blocks.iter().map(Vec::len).sum(),
        ..Default::default()
    };
    if blocks.is_empty() {
        return (Vec::new(), stats);
    }
    // Three shared zones addressed by both sides, as in Fig. 4/5, derived as
    // sub-keys of this daemon's shard so they never collide with (or lock
    // against) another daemon's zones.
    let base = pool.key_for(node_id, daemon_index);
    let zones: Vec<SharedSegment<T>> = (0..3u64).map(|i| pool.attach(base.subkey(i))).collect();
    for zone in &zones {
        zone.take();
    }
    let (agent_link, daemon_link) = control_link_pair();
    let daemon_zones: Vec<SharedSegment<T>> = zones.clone();

    let mut uploaded: Vec<Vec<T>> = Vec::with_capacity(blocks.len());
    thread::scope(|scope| {
        // ---- Daemon side (Algorithm 1) ----
        let compute_ref = &compute;
        scope.spawn(move || {
            daemon_loop(&daemon_link, &daemon_zones, compute_ref);
        });

        // ---- Agent side (Algorithm 2) ----
        let mut pointers = ZonePointers { n: 0, c: 1, u: 2 };
        let mut pending = blocks.into_iter();
        // Line 1-2: download the first block into zone n, then signal.
        if let Some(first) = pending.next() {
            zones[pointers.n].replace(first);
        }
        agent_link
            .send(ControlMessage::ExchangeFinished)
            .expect("daemon alive");
        loop {
            let message = agent_link.recv().expect("daemon alive");
            stats.control_messages += 1;
            match message {
                ControlMessage::RotateFinished => {
                    pointers.rotate();
                    stats.rotations += 1;
                    // "Thread upload": drain zone u.
                    let finished = zones[pointers.u].take();
                    if !finished.is_empty() {
                        uploaded.push(finished);
                    }
                    // "Thread download": fetch the next block into zone n.
                    match pending.next() {
                        Some(block) => {
                            zones[pointers.n].replace(block);
                        }
                        None => {
                            zones[pointers.n].take();
                        }
                    }
                }
                ControlMessage::ComputeFinished => {
                    // Upload and download for this cycle completed above (the
                    // agent performs them synchronously), so the exchange is
                    // done as soon as the daemon is.
                    agent_link
                        .send(ControlMessage::ExchangeFinished)
                        .expect("daemon alive");
                }
                ControlMessage::ComputeAllFinished => {
                    // Drain whatever the last rotation left in the upload zone.
                    let finished = zones[pointers.u].take();
                    if !finished.is_empty() {
                        uploaded.push(finished);
                    }
                    break;
                }
                other => panic!("unexpected message on agent side: {other:?}"),
            }
        }
        stats.control_messages += agent_link.sent_count() as usize;
    });
    (uploaded, stats)
}

/// Algorithm 1: the daemon side of the shuffle protocol.
fn daemon_loop<T, C>(link: &ControlLink, zones: &[SharedSegment<T>], compute: &C)
where
    T: Clone,
    C: Fn(&T) -> T,
{
    let mut pointers = ZonePointers { n: 0, c: 1, u: 2 };
    loop {
        match link.recv() {
            Ok(ControlMessage::ExchangeFinished) => {
                pointers.rotate();
                if link.send(ControlMessage::RotateFinished).is_err() {
                    return;
                }
                // After rotation the daemon inspects zone c: compute it if it
                // has contents, otherwise every block has been processed.
                let has_content = !zones[pointers.c].is_empty();
                if has_content {
                    zones[pointers.c].write(|buf| {
                        for item in buf.iter_mut() {
                            *item = compute(item);
                        }
                    });
                    if link.send(ControlMessage::ComputeFinished).is_err() {
                        return;
                    }
                } else {
                    let _ = link.send(ControlMessage::ComputeAllFinished);
                    return;
                }
            }
            Ok(ControlMessage::Disconnect) | Err(_) => return,
            Ok(other) => panic!("unexpected message on daemon side: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(n: usize, size: usize) -> Vec<Vec<u64>> {
        (0..n)
            .map(|b| ((b * size) as u64..((b + 1) * size) as u64).collect())
            .collect()
    }

    #[test]
    fn plain_pipeline_preserves_every_item_in_order() {
        let input = blocks(8, 16);
        let mut collected = Vec::new();
        let stats = run_pipeline(input, |&x| x * 3, |block: Vec<u64>| collected.extend(block));
        assert_eq!(stats.blocks, 8);
        assert_eq!(stats.items, 128);
        let expected: Vec<u64> = (0..128u64).map(|x| x * 3).collect();
        assert_eq!(collected, expected);
    }

    #[test]
    fn plain_pipeline_handles_empty_input() {
        let stats = run_pipeline(Vec::<Vec<u64>>::new(), |&x: &u64| x, |_block: Vec<u64>| {});
        assert_eq!(stats.blocks, 0);
        assert_eq!(stats.items, 0);
    }

    #[test]
    fn shuffle_protocol_computes_every_block() {
        let input = blocks(5, 10);
        let (output, stats) = run_shuffle_protocol(input.clone(), |&x| x + 1_000);
        assert_eq!(output.len(), 5);
        let mut all: Vec<u64> = output.into_iter().flatten().collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = input.into_iter().flatten().map(|x| x + 1_000).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
        // Every cycle performs exactly one rotation; the protocol needs one
        // rotation per block plus the draining rotations at the tail.
        assert!(stats.rotations >= 5);
        assert!(stats.control_messages > 0);
    }

    #[test]
    fn shuffle_protocol_single_block() {
        let (output, stats) = run_shuffle_protocol(vec![vec![7u32, 9]], |&x| x * x);
        assert_eq!(output, vec![vec![49, 81]]);
        assert!(stats.rotations >= 1);
    }

    #[test]
    fn shuffle_protocol_empty_input() {
        let (output, stats) = run_shuffle_protocol(Vec::<Vec<u8>>::new(), |&x| x);
        assert!(output.is_empty());
        assert_eq!(stats.items, 0);
    }

    #[test]
    fn shuffle_protocol_handles_many_small_blocks() {
        let input = blocks(64, 2);
        let (output, _stats) = run_shuffle_protocol(input, |&x| x);
        let total: usize = output.iter().map(Vec::len).sum();
        assert_eq!(total, 128);
    }

    #[test]
    fn concurrent_daemons_shuffle_on_their_own_shards() {
        // Several daemons of one node run the full protocol at the same time
        // on one pool: every run must land on its own zones (no cross-daemon
        // interference, no shared lock on one segment set).
        let pool: SegmentPool<u64> = SegmentPool::new(4);
        let outputs = thread::scope(|scope| {
            let handles: Vec<_> = (0..4usize)
                .map(|daemon| {
                    let pool = &pool;
                    scope.spawn(move || {
                        let input = blocks(6, 32);
                        let offset = daemon as u64 * 1_000_000;
                        run_shuffle_protocol_sharded(pool, 0, daemon, input, move |&x| x + offset).0
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for (daemon, output) in outputs.into_iter().enumerate() {
            let mut all: Vec<u64> = output.into_iter().flatten().collect();
            all.sort_unstable();
            let expected: Vec<u64> = (0..(6 * 32) as u64)
                .map(|x| x + daemon as u64 * 1_000_000)
                .collect();
            assert_eq!(all, expected, "daemon {daemon}");
        }
        // Exactly three zones per daemon were created in the pool.
        assert_eq!(pool.num_shards(), 4 * 3);
    }
}
