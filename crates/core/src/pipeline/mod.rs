//! Intra-iteration optimisation: pipeline shuffle (§III-A).
//!
//! The ordinary accelerated workflow has five steps — download from the upper
//! system, agent→daemon transfer, compute, daemon→agent transfer, upload — and
//! executing them back to back leaves the accelerator idle most of the time.
//! Pipeline shuffle
//!
//! 1. collapses the five steps to three (download / compute / upload) by
//!    placing the data in a shared memory space both sides can address,
//! 2. runs the three steps as a three-layer pipeline over fixed-size blocks of
//!    edge triplets, and
//! 3. replaces inter-thread data copies with pointer rotation over three
//!    memory zones (`n` → `c` → `u` → `n`), so blocks are handed between
//!    layers in place.
//!
//! [`block_size`] implements the analytical block-size selection of Lemma 1;
//! [`shuffle`] implements the runnable three-thread pipeline, including the
//! message protocol of Algorithms 1 and 2.

pub mod block_size;
pub mod shuffle;

pub use block_size::{BlockSizeChoice, LemmaCase, PipelineCoefficients};
pub use shuffle::{
    run_pipeline, run_shuffle_protocol, run_shuffle_protocol_sharded, PipelineRunStats,
};
