//! Optimal block-size selection (§III-A2c, Lemma 1).
//!
//! The pipeline splits the `d` data entities of one node-iteration into `s`
//! blocks of size `b = d / s`, processed by three threads
//! (`Thread.Download`, `Thread.Compute`, `Thread.Upload`).  With per-item
//! coefficients `k1` (download), `k2` (compute), `k3` (upload) and the fixed
//! device-call cost `a`, the paper models the pipelined makespan as
//!
//! ```text
//! T_total = k1·b + max(k1·b, a + k2·b)
//!         + (s − 2)·max(k1·b, a + k2·b, k3·b)
//!         + max(a + k2·b, k3·b) + k3·b              (Equation 2)
//! ```
//!
//! and Lemma 1 derives the block size minimising it.  This module implements
//! both the estimator and the closed-form optimum, which the agent uses to
//! pick `b` ("Pipeline*" in Fig. 10) and the Fig. 15 harness sweeps.

use serde::{Deserialize, Serialize};

/// The per-item cost coefficients of one agent–daemon pair.
///
/// All values are in simulated milliseconds (per item for the `k`s, absolute
/// for `a`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineCoefficients {
    /// Download cost per data entity (`Thread.Download`).
    pub k1: f64,
    /// Compute cost per data entity (`Thread.Compute`, excluding the call).
    pub k2: f64,
    /// Upload cost per data entity (`Thread.Upload`).
    pub k3: f64,
    /// Fixed cost of calling the computation device once per block (`Tcall`).
    pub a: f64,
}

impl PipelineCoefficients {
    /// Creates a coefficient set, validating positivity.
    pub fn new(k1: f64, k2: f64, k3: f64, a: f64) -> Self {
        assert!(
            k1 > 0.0 && k2 > 0.0 && k3 > 0.0 && a >= 0.0,
            "coefficients must be positive (k1={k1}, k2={k2}, k3={k3}, a={a})"
        );
        Self { k1, k2, k3, a }
    }

    /// The coefficients the paper measured for SSSP (footnote 6).
    pub fn paper_sssp() -> Self {
        Self::new(0.03, 0.51, 0.09, 84_671.0 * 1e-6)
    }

    /// The coefficients the paper measured for PageRank (footnote 6).
    pub fn paper_pagerank() -> Self {
        Self::new(0.02, 0.58, 0.1, 1_970.0 * 1e-6)
    }

    /// The coefficients the paper measured for LP (footnote 6).
    pub fn paper_lp() -> Self {
        Self::new(0.003, 0.59, 0.006, 498.0 * 1e-6)
    }

    /// Per-block time of the download thread, `Tn(b) = k1·b`.
    pub fn t_download(&self, b: f64) -> f64 {
        self.k1 * b
    }

    /// Per-block time of the compute thread, `Tc(b) = a + k2·b`.
    pub fn t_compute(&self, b: f64) -> f64 {
        self.a + self.k2 * b
    }

    /// Per-block time of the upload thread, `Tu(b) = k3·b`.
    pub fn t_upload(&self, b: f64) -> f64 {
        self.k3 * b
    }

    /// Estimates the pipelined makespan of processing `d` entities with block
    /// size `b` (Equation 2).  `b` is clamped to `[1, d]`.
    pub fn estimate_total(&self, d: usize, b: usize) -> f64 {
        if d == 0 {
            return 0.0;
        }
        let b = b.clamp(1, d) as f64;
        let d = d as f64;
        let s = (d / b).ceil();
        let tn = self.t_download(b);
        let tc = self.t_compute(b);
        let tu = self.t_upload(b);
        if s <= 1.0 {
            // A single block degenerates to strictly sequential processing.
            return tn + tc + tu;
        }
        let stage_max = tn.max(tc).max(tu);
        tn + tn.max(tc) + (s - 2.0).max(0.0) * stage_max + tc.max(tu) + tu
    }

    /// Estimates the *unpipelined* makespan of the original 5-step workflow:
    /// the phases run strictly one after the other over the whole dataset,
    /// and the agent↔daemon hand-offs are conventional inter-process copies
    /// (no shared-memory zones, no pointer rotation), each costing about as
    /// much as the corresponding upper-system transfer in both directions.
    pub fn estimate_unpipelined(&self, d: usize) -> f64 {
        if d == 0 {
            return 0.0;
        }
        let d = d as f64;
        let ipc_copy = (self.k1 + self.k3) * d;
        // download + agent->daemon copy + compute + daemon->agent copy + upload
        self.k1 * d + ipc_copy + (self.a + self.k2 * d) + ipc_copy + self.k3 * d
    }

    /// `Q = sqrt(a·d / (k1 + k3))`, the unconstrained optimum of Case 2.
    pub fn q(&self, d: usize) -> f64 {
        (self.a * d as f64 / (self.k1 + self.k3)).sqrt()
    }

    /// Simulates the actual three-stage pipeline schedule block by block
    /// (handling the ragged final block exactly) and returns its makespan.
    ///
    /// This is the "real" execution the Fig. 15 harness compares the
    /// Equation 2 estimate against: stage `i` of block `j` can only start once
    /// stage `i` finished block `j − 1` *and* stage `i − 1` finished block `j`.
    pub fn simulate_schedule(&self, d: usize, b: usize) -> f64 {
        if d == 0 {
            return 0.0;
        }
        let b = b.clamp(1, d);
        let mut download_done = 0.0f64;
        let mut compute_done = 0.0f64;
        let mut upload_done = 0.0f64;
        let mut remaining = d;
        while remaining > 0 {
            let block = remaining.min(b) as f64;
            download_done += self.t_download(block);
            compute_done = download_done.max(compute_done) + self.t_compute(block);
            upload_done = compute_done.max(upload_done) + self.t_upload(block);
            remaining -= block as usize;
        }
        upload_done
    }

    /// Computes the optimal block size and the corresponding minimum makespan
    /// for `d` data entities (Lemma 1).
    pub fn optimal_block_size(&self, d: usize) -> BlockSizeChoice {
        if d == 0 {
            return BlockSizeChoice {
                block_size: 1,
                num_blocks: 0,
                estimated_total: 0.0,
                case: LemmaCase::Degenerate,
            };
        }
        let q = self.q(d);
        let d_f = d as f64;
        let (b_opt, _continuous_t_min, case) = if self.k1 >= self.k2 && self.k1 >= self.k3 {
            // kmax = k1.
            let threshold = self.a / (self.k1 - self.k2);
            if self.k1 > self.k2 && threshold < q {
                (
                    threshold,
                    self.a * (self.k1 + self.k3) / (self.k1 - self.k2) + self.k1 * d_f,
                    LemmaCase::DownloadBound,
                )
            } else {
                (
                    q,
                    self.k2 * d_f + 2.0 * ((self.k1 + self.k3) * self.a * d_f).sqrt(),
                    LemmaCase::ComputeBound,
                )
            }
        } else if self.k3 >= self.k2 && self.k3 >= self.k1 {
            // kmax = k3.
            let threshold = self.a / (self.k3 - self.k2);
            if self.k3 > self.k2 && threshold < q {
                (
                    threshold,
                    self.a * (self.k1 + self.k3) / (self.k3 - self.k2) + self.k3 * d_f,
                    LemmaCase::UploadBound,
                )
            } else {
                (
                    q,
                    self.k2 * d_f + 2.0 * ((self.k1 + self.k3) * self.a * d_f).sqrt(),
                    LemmaCase::ComputeBound,
                )
            }
        } else {
            // kmax = k2: the compute thread dominates regardless of b.
            (
                q,
                self.k2 * d_f + 2.0 * ((self.k1 + self.k3) * self.a * d_f).sqrt(),
                LemmaCase::ComputeBound,
            )
        };
        // Both b and s must be integers (the paper evaluates the floor/ceil
        // neighbours of both): consider the integer neighbours of the analytic
        // b as well as block sizes derived from the integer neighbours of
        // s = d / b, and keep whichever Equation 2 scores best.
        let mut candidates = vec![
            b_opt.floor().max(1.0) as usize,
            b_opt.ceil().max(1.0) as usize,
        ];
        let s_opt = d_f / b_opt.max(1.0);
        for s in [
            s_opt.floor().max(1.0) as usize,
            s_opt.ceil().max(1.0) as usize,
        ] {
            if s >= 1 {
                candidates.push(d.div_ceil(s));
            }
        }
        let mut best_b = candidates[0].min(d.max(1)).max(1);
        let mut best_t = self.estimate_total(d, best_b);
        for &b in &candidates[1..] {
            let b = b.min(d.max(1)).max(1);
            let t = self.estimate_total(d, b);
            if t < best_t {
                best_t = t;
                best_b = b;
            }
        }
        BlockSizeChoice {
            block_size: best_b,
            num_blocks: d.div_ceil(best_b),
            estimated_total: best_t,
            case,
        }
    }
}

/// Which branch of Lemma 1 produced the optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LemmaCase {
    /// `k1` dominates and the threshold `a/(k1−k2)` is below `Q`.
    DownloadBound,
    /// `k3` dominates and the threshold `a/(k3−k2)` is below `Q`.
    UploadBound,
    /// The compute thread dominates: `b = Q`.
    ComputeBound,
    /// No data to process.
    Degenerate,
}

/// The outcome of block-size selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockSizeChoice {
    /// Chosen block size `b`.
    pub block_size: usize,
    /// Resulting number of blocks `s = ceil(d / b)`.
    pub num_blocks: usize,
    /// Estimated pipelined makespan at the chosen block size.
    pub estimated_total: f64,
    /// Which case of Lemma 1 applied.
    pub case: LemmaCase,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coefficients() -> PipelineCoefficients {
        // Compute-dominated: k2 is the largest coefficient (the common case
        // for accelerated kernels fed through cheap shared-memory transfers).
        PipelineCoefficients::new(0.02, 0.58, 0.1, 1.97)
    }

    #[test]
    fn estimate_matches_hand_computation_for_two_blocks() {
        let c = PipelineCoefficients::new(1.0, 2.0, 1.5, 0.5);
        // d = 20, b = 10 -> s = 2:
        // T = k1 b + max(k1 b, a + k2 b) + 0 + max(a + k2 b, k3 b) + k3 b
        //   = 10 + max(10, 20.5) + max(20.5, 15) + 15 = 10 + 20.5 + 20.5 + 15 = 66.
        let t = c.estimate_total(20, 10);
        assert!((t - 66.0).abs() < 1e-9, "{t}");
    }

    #[test]
    fn single_block_degenerates_to_sequential_sum() {
        let c = PipelineCoefficients::new(1.0, 2.0, 1.5, 0.5);
        let t = c.estimate_total(10, 10);
        assert!((t - (10.0 + 0.5 + 20.0 + 15.0)).abs() < 1e-9);
        assert_eq!(c.estimate_total(0, 5), 0.0);
    }

    #[test]
    fn estimate_is_u_shaped_in_block_count() {
        // As s grows (b shrinks), the call overhead dominates; as s shrinks
        // (b grows), the pipeline loses overlap.  The optimum is interior.
        let c = coefficients();
        let d = 100_000;
        let tiny_blocks = c.estimate_total(d, 10); // s = 10_000
        let optimal = c.optimal_block_size(d);
        let huge_blocks = c.estimate_total(d, d); // s = 1
        assert!(optimal.estimated_total < tiny_blocks);
        assert!(optimal.estimated_total < huge_blocks);
        assert!(optimal.block_size > 10 && optimal.block_size < d);
    }

    #[test]
    fn optimum_beats_a_sweep_of_alternatives() {
        let c = coefficients();
        let d = 50_000;
        let best = c.optimal_block_size(d);
        for b in [16usize, 64, 256, 1_024, 4_096, 16_384, 50_000] {
            let t = c.estimate_total(d, b);
            // Integer effects (s = ceil(d/b)) can shave a fraction of a percent
            // off block sizes that happen to divide d nicely; the analytic
            // optimum must stay within 1% of any swept configuration.
            assert!(
                best.estimated_total <= t * 1.01,
                "b={b}: sweep {t} beats optimum {}",
                best.estimated_total
            );
        }
    }

    #[test]
    fn paper_coefficients_give_compute_bound_optima() {
        for c in [
            PipelineCoefficients::paper_sssp(),
            PipelineCoefficients::paper_pagerank(),
            PipelineCoefficients::paper_lp(),
        ] {
            let choice = c.optimal_block_size(1_000_000);
            assert_eq!(choice.case, LemmaCase::ComputeBound);
            assert!(choice.block_size >= 1);
            assert!(choice.num_blocks >= 1);
        }
    }

    #[test]
    fn download_bound_case_is_detected() {
        // k1 dominates by a wide margin and the call cost is small, so the
        // threshold a/(k1-k2) falls below Q.
        let c = PipelineCoefficients::new(1.0, 0.1, 0.2, 0.5);
        let choice = c.optimal_block_size(100_000);
        assert_eq!(choice.case, LemmaCase::DownloadBound);
        // The analytic optimum is a/(k1-k2) = 0.555..; integer rounding keeps
        // it within one unit.
        assert!(choice.block_size <= 2);
    }

    #[test]
    fn upload_bound_case_is_detected() {
        let c = PipelineCoefficients::new(0.2, 0.1, 1.0, 0.5);
        let choice = c.optimal_block_size(100_000);
        assert_eq!(choice.case, LemmaCase::UploadBound);
    }

    #[test]
    fn pipelining_beats_the_unpipelined_baseline() {
        let c = coefficients();
        let d = 100_000;
        let pipelined = c.optimal_block_size(d).estimated_total;
        let unpipelined = c.estimate_unpipelined(d);
        assert!(
            pipelined < unpipelined,
            "pipelined {pipelined} should beat unpipelined {unpipelined}"
        );
    }

    #[test]
    #[should_panic]
    fn non_positive_coefficients_are_rejected() {
        let _ = PipelineCoefficients::new(0.0, 1.0, 1.0, 1.0);
    }

    #[test]
    fn zero_data_is_degenerate() {
        let choice = coefficients().optimal_block_size(0);
        assert_eq!(choice.case, LemmaCase::Degenerate);
        assert_eq!(choice.num_blocks, 0);
    }

    #[test]
    fn simulated_schedule_tracks_the_estimate() {
        let c = coefficients();
        let d = 40_000;
        for b in [64usize, 500, 2_000, 10_000, 40_000] {
            let estimate = c.estimate_total(d, b);
            let simulated = c.simulate_schedule(d, b);
            let relative = (estimate - simulated).abs() / simulated.max(1e-9);
            assert!(
                relative < 0.15,
                "b={b}: estimate {estimate} vs simulated {simulated}"
            );
        }
        assert_eq!(c.simulate_schedule(0, 10), 0.0);
    }

    #[test]
    fn simulated_schedule_is_u_shaped_like_the_estimate() {
        let c = coefficients();
        let d = 50_000;
        let best = c.optimal_block_size(d);
        let at_opt = c.simulate_schedule(d, best.block_size);
        assert!(at_opt < c.simulate_schedule(d, 5));
        assert!(at_opt < c.simulate_schedule(d, d));
    }
}
