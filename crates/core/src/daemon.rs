//! The computation daemon (§II-A1).
//!
//! "A daemon represents an accelerator, where graph algorithms are executed."
//! A [`Daemon`] wraps one [`Device`], holds an instance of the algorithm
//! template for the duration of a run, and keeps the device context alive
//! across iterations (runtime isolation, §IV-C) so that initialisation is paid
//! once per daemon lifetime rather than once per call.
//!
//! The daemon executes the template's three APIs over blocks of data:
//! `MSGGen` over triplet blocks on the device, `MSGMerge` combining the
//! resulting messages, and `MSGApply` over vertex blocks.

use crate::pipeline::block_size::PipelineCoefficients;
use crate::runtime::RuntimeError;
use gxplug_accel::{AccelError, CostModel, Device, DeviceKind, KernelTiming, SimDuration};
use gxplug_engine::profile::RuntimeProfile;
use gxplug_engine::template::{AddressedMessage, GraphAlgorithm};
use gxplug_graph::types::{Triplet, VertexId};
use gxplug_ipc::blocks::{triplet_block_views, TripletBlockRef};
use gxplug_ipc::channel::ControlLink;
use gxplug_ipc::key::IpcKey;
use std::collections::HashMap;

/// Immutable description of a daemon: everything an agent needs to plan work
/// for it — splitting shares by capacity, choosing block sizes, attributing
/// pipeline time — without touching the daemon itself.
///
/// This is what makes the threaded runtime possible: while the [`Daemon`]
/// lives on its worker thread, the agent keeps a `DaemonInfo` snapshot and
/// plans against it, sending only the actual kernel work across the thread
/// boundary.
#[derive(Debug, Clone)]
pub struct DaemonInfo {
    name: String,
    kind: DeviceKind,
    key: IpcKey,
    capacity_factor: f64,
    cost: CostModel,
}

impl DaemonInfo {
    /// Snapshots the metadata of `daemon`.
    pub fn of(daemon: &Daemon) -> Self {
        Self {
            name: daemon.name.clone(),
            kind: daemon.kind(),
            key: daemon.key(),
            capacity_factor: daemon.capacity_factor(),
            cost: *daemon.device().cost_model(),
        }
    }

    /// Daemon name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wrapped device's kind.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// The IPC key of the daemon's shared memory space.
    pub fn key(&self) -> IpcKey {
        self.key
    }

    /// The device's computation capacity factor `1/c_j`.
    pub fn capacity_factor(&self) -> f64 {
        self.capacity_factor
    }

    /// The device's memory capacity in items, if bounded.
    pub fn memory_capacity_items(&self) -> Option<usize> {
        self.cost.memory_capacity_items
    }

    /// Derives the Lemma-1 pipeline coefficients of this daemon when driven
    /// by an upper system with the given runtime profile.
    pub fn coefficients(&self, profile: &RuntimeProfile) -> PipelineCoefficients {
        coefficients_for(&self.cost, profile)
    }
}

/// The Lemma-1 coefficients of a device cost model under a runtime profile:
/// `k1`/`k3` come from the upper system's per-item transfer costs, `k2` and
/// `a` from the device.
fn coefficients_for(cost: &CostModel, profile: &RuntimeProfile) -> PipelineCoefficients {
    PipelineCoefficients::new(
        profile.per_item_download.as_millis().max(1e-9),
        cost.per_item_cost().as_millis().max(1e-9),
        profile.per_item_upload.as_millis().max(1e-9),
        cost.call.as_millis().max(0.0),
    )
}

/// What one `MSGGen` kernel launch produces: the generated messages plus the
/// device timing attribution.
pub type GenOutput<M> = (Vec<AddressedMessage<M>>, KernelTiming);

/// `MSGMerge` as a pure function: combines messages addressed to the same
/// vertex, preserving first-seen target order for determinism.  The merge is
/// memory-bound host work, so it does not need a device; both the serial
/// [`Agent`](crate::Agent) and the threaded runtime call this directly.
///
/// Takes any message iterator so callers can drain their pooled per-daemon
/// buffers straight into the merge without concatenating them first.
pub fn merge_addressed<V, E, A, I>(algorithm: &A, messages: I) -> Vec<AddressedMessage<A::Msg>>
where
    A: GraphAlgorithm<V, E>,
    I: IntoIterator<Item = AddressedMessage<A::Msg>>,
{
    let mut order: Vec<VertexId> = Vec::new();
    let mut merged: HashMap<VertexId, A::Msg> = HashMap::new();
    for message in messages {
        match merged.remove(&message.target) {
            Some(existing) => {
                let combined = algorithm.msg_merge(existing, message.payload);
                merged.insert(message.target, combined);
            }
            None => {
                order.push(message.target);
                merged.insert(message.target, message.payload);
            }
        }
    }
    order
        .into_iter()
        .map(|target| {
            let payload = merged.remove(&target).expect("target recorded in order");
            AddressedMessage::new(target, payload)
        })
        .collect()
}

/// Runs `MSGGen` over one *borrowed* capacity share of triplets, chunked
/// into [`TripletBlockRef`] views of `block_size`, appending the generated
/// messages (in block order) to the caller's reusable `out` buffer.  Returns
/// the number of blocks launched.  This is the unit of work an agent hands to
/// a daemon — on the calling thread in serial mode, on the daemon's worker
/// thread in threaded mode — and it copies no triplet and allocates nothing
/// beyond `out`'s amortised growth.
///
/// # Errors
/// A block the device rejects (e.g. [`AccelError::OutOfMemory`] for a
/// mis-sized block) is returned as [`RuntimeError::Kernel`] instead of
/// aborting the process; the agent propagates it up through
/// `process_iteration` so the run fails with a typed error.
pub fn execute_share<V, E, A>(
    daemon: &mut Daemon,
    algorithm: &A,
    share: &[Triplet<V, E>],
    block_size: usize,
    iteration: usize,
    out: &mut Vec<AddressedMessage<A::Msg>>,
) -> Result<usize, RuntimeError>
where
    A: GraphAlgorithm<V, E>,
{
    let mut blocks = 0usize;
    for block in triplet_block_views(share, block_size) {
        daemon
            .execute_gen_into(algorithm, block, iteration, out)
            .map_err(|error| RuntimeError::Kernel {
                daemon: daemon.name().to_string(),
                error,
            })?;
        blocks += 1;
    }
    Ok(blocks)
}

/// Cumulative per-daemon counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Kernel launches issued to the device.
    pub kernel_launches: u64,
    /// Triplets processed by `MSGGen`.
    pub triplets_processed: u64,
    /// Messages produced by `MSGGen` (before merging).
    pub messages_generated: u64,
    /// Vertices updated by `MSGApply`.
    pub vertices_applied: u64,
}

/// A computation daemon bound to one accelerator device.
#[derive(Debug)]
pub struct Daemon {
    name: String,
    device: Device,
    key: IpcKey,
    link: Option<ControlLink>,
    started: bool,
    stats: DaemonStats,
}

impl Daemon {
    /// Creates a daemon for `device`, addressed by the System-V-style `key`.
    pub fn new(name: impl Into<String>, device: Device, key: IpcKey) -> Self {
        Self {
            name: name.into(),
            device,
            key,
            link: None,
            started: false,
            stats: DaemonStats::default(),
        }
    }

    /// Attaches the daemon side of a control link (for protocol-level tests
    /// and the threaded pipeline).
    pub fn with_link(mut self, link: ControlLink) -> Self {
        self.link = Some(link);
        self
    }

    /// Daemon name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The IPC key of this daemon's shared memory space.
    pub fn key(&self) -> IpcKey {
        self.key
    }

    /// The wrapped device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The device kind (GPU / CPU / FPGA).
    pub fn kind(&self) -> DeviceKind {
        self.device.kind()
    }

    /// The device's computation capacity factor `1/c_j`.
    pub fn capacity_factor(&self) -> f64 {
        self.device.capacity_factor()
    }

    /// Whether [`Daemon::start`] has been called.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DaemonStats {
        self.stats
    }

    /// The control link, if attached.
    pub fn link(&self) -> Option<&ControlLink> {
        self.link.as_ref()
    }

    /// Starts the daemon: initialises the device context once.  Returns the
    /// initialisation time (zero if already started).
    ///
    /// Under runtime isolation the daemon outlives upper-system calls, so
    /// this cost is paid exactly once per run; the naive "raw call"
    /// integration of Fig. 13 instead pays it on every iteration.
    pub fn start(&mut self) -> SimDuration {
        self.started = true;
        self.device.initialize()
    }

    /// Stops the daemon and tears down the device context.
    pub fn shutdown(&mut self) {
        self.started = false;
        self.device.shutdown();
    }

    /// Snapshots the planning metadata of this daemon (see [`DaemonInfo`]).
    pub fn info(&self) -> DaemonInfo {
        DaemonInfo::of(self)
    }

    /// Derives the Lemma-1 pipeline coefficients of this agent–daemon pair
    /// (no snapshot is built: this sits in the serial agent's per-iteration
    /// loop).
    pub fn coefficients(&self, profile: &RuntimeProfile) -> PipelineCoefficients {
        coefficients_for(self.device.cost_model(), profile)
    }

    /// `MSGGen` over one borrowed triplet block: runs the kernel on the
    /// device and returns the generated messages together with the device
    /// timing.
    pub fn execute_gen<V, E, A>(
        &mut self,
        algorithm: &A,
        block: TripletBlockRef<'_, V, E>,
        iteration: usize,
    ) -> Result<GenOutput<A::Msg>, AccelError>
    where
        A: GraphAlgorithm<V, E>,
    {
        let mut messages: Vec<AddressedMessage<A::Msg>> = Vec::new();
        let timing = self.execute_gen_into(algorithm, block, iteration, &mut messages)?;
        Ok((messages, timing))
    }

    /// `MSGGen` over one borrowed triplet block, appending the generated
    /// messages to the caller's reusable `out` buffer — the zero-copy variant
    /// of [`Daemon::execute_gen`]: the triplets are read in place from the
    /// block view and the daemon allocates nothing per launch.
    pub fn execute_gen_into<V, E, A>(
        &mut self,
        algorithm: &A,
        block: TripletBlockRef<'_, V, E>,
        iteration: usize,
        out: &mut Vec<AddressedMessage<A::Msg>>,
    ) -> Result<KernelTiming, AccelError>
    where
        A: GraphAlgorithm<V, E>,
    {
        let before = out.len();
        let timing = self.device.execute_batch_with(block.triplets, |triplet| {
            out.extend(algorithm.msg_gen(triplet, iteration))
        })?;
        self.stats.kernel_launches += 1;
        self.stats.triplets_processed += block.len() as u64;
        self.stats.messages_generated += (out.len() - before) as u64;
        Ok(timing)
    }

    /// `MSGMerge`: combines messages addressed to the same vertex.  The merge
    /// runs on the daemon's host side (it is memory-bound, not compute-bound)
    /// and preserves first-seen target order for determinism.  Delegates to
    /// the free function [`merge_addressed`].
    pub fn merge_messages<V, E, A>(
        &mut self,
        algorithm: &A,
        messages: Vec<AddressedMessage<A::Msg>>,
    ) -> Vec<AddressedMessage<A::Msg>>
    where
        A: GraphAlgorithm<V, E>,
    {
        merge_addressed(algorithm, messages)
    }

    /// `MSGApply` over a batch of `(vertex, current value, merged message)`
    /// entries: runs the apply kernel on the device and returns the vertices
    /// whose value changed, with the device timing.
    pub fn execute_apply<V, E, A>(
        &mut self,
        algorithm: &A,
        batch: &[(VertexId, V, A::Msg)],
        iteration: usize,
    ) -> Result<(Vec<(VertexId, V)>, KernelTiming), AccelError>
    where
        V: Clone,
        A: GraphAlgorithm<V, E>,
    {
        let run = self
            .device
            .execute_batch(batch, |(vertex, current, message)| {
                algorithm
                    .msg_apply(*vertex, current, message, iteration)
                    .map(|new_value| (*vertex, new_value))
            })?;
        self.stats.kernel_launches += 1;
        let updated: Vec<(VertexId, V)> = run.outputs.into_iter().flatten().collect();
        self.stats.vertices_applied += updated.len() as u64;
        Ok((updated, run.timing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gxplug_accel::presets;
    use gxplug_engine::template::AddressedMessage;
    use gxplug_graph::types::Triplet;
    use gxplug_ipc::key::KeyGenerator;

    /// Min-distance relaxation used to exercise the daemon APIs.
    struct Relax;

    impl GraphAlgorithm<f64, f64> for Relax {
        type Msg = f64;
        fn init_vertex(&self, _v: VertexId, _d: usize) -> f64 {
            f64::INFINITY
        }
        fn msg_gen(&self, t: &Triplet<f64, f64>, _i: usize) -> Vec<AddressedMessage<f64>> {
            if t.src_attr.is_finite() {
                vec![AddressedMessage::new(t.dst, t.src_attr + t.edge_attr)]
            } else {
                Vec::new()
            }
        }
        fn msg_merge(&self, a: f64, b: f64) -> f64 {
            a.min(b)
        }
        fn msg_apply(&self, _v: VertexId, cur: &f64, msg: &f64, _i: usize) -> Option<f64> {
            (msg < cur).then_some(*msg)
        }
        fn name(&self) -> &'static str {
            "relax"
        }
    }

    fn daemon() -> Daemon {
        let key = KeyGenerator::new(0).key_for(0, 0);
        Daemon::new("d0", presets::cpu_xeon_20c("c0"), key)
    }

    fn triplets() -> Vec<Triplet<f64, f64>> {
        vec![
            Triplet::new(0, 1, 0.0, f64::INFINITY, 2.0),
            Triplet::new(0, 2, 0.0, f64::INFINITY, 5.0),
            Triplet::new(3, 1, f64::INFINITY, f64::INFINITY, 1.0),
            Triplet::new(2, 1, 7.0, f64::INFINITY, 1.0),
        ]
    }

    #[test]
    fn start_pays_init_once() {
        let mut d = daemon();
        assert!(!d.is_started());
        let first = d.start();
        assert!(first > SimDuration::ZERO);
        assert!(d.is_started());
        let second = d.start();
        assert!(second.is_zero());
        d.shutdown();
        assert!(!d.is_started());
        assert!(d.start() > SimDuration::ZERO);
    }

    #[test]
    fn execute_gen_produces_real_messages() {
        let mut d = daemon();
        d.start();
        let triplets = triplets();
        let block = TripletBlockRef {
            index: 0,
            triplets: &triplets,
        };
        let (messages, timing) = d.execute_gen(&Relax, block, 0).unwrap();
        // The triplet with an infinite source produces nothing.
        assert_eq!(messages.len(), 3);
        assert!(timing.total() > SimDuration::ZERO);
        assert!(timing.init.is_zero());
        assert_eq!(d.stats().triplets_processed, 4);
        assert_eq!(d.stats().messages_generated, 3);
    }

    #[test]
    fn merge_keeps_the_minimum_per_target() {
        let mut d = daemon();
        let merged = d.merge_messages::<f64, f64, Relax>(
            &Relax,
            vec![
                AddressedMessage::new(1, 2.0),
                AddressedMessage::new(2, 5.0),
                AddressedMessage::new(1, 8.0),
                AddressedMessage::new(1, 1.0),
            ],
        );
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].target, 1);
        assert_eq!(merged[0].payload, 1.0);
        assert_eq!(merged[1].target, 2);
        assert_eq!(merged[1].payload, 5.0);
    }

    #[test]
    fn execute_apply_returns_only_changed_vertices() {
        let mut d = daemon();
        d.start();
        let batch = vec![(1u32, f64::INFINITY, 2.0f64), (2, 1.0, 5.0), (3, 9.0, 4.0)];
        let (updated, _timing) = d.execute_apply(&Relax, &batch, 0).unwrap();
        assert_eq!(updated, vec![(1, 2.0), (3, 4.0)]);
        assert_eq!(d.stats().vertices_applied, 2);
    }

    #[test]
    fn coefficients_reflect_device_and_profile() {
        let d = daemon();
        let coefficients = d.coefficients(&RuntimeProfile::powergraph());
        assert!(coefficients.k2 > 0.0);
        assert!(coefficients.a >= 0.0);
        // GPU daemons have a larger call constant than CPU daemons.
        let key = KeyGenerator::new(0).key_for(0, 1);
        let gpu = Daemon::new("g0", presets::gpu_v100("g"), key);
        let gpu_coefficients = gpu.coefficients(&RuntimeProfile::powergraph());
        assert!(gpu_coefficients.a > coefficients.a);
        assert!(gpu_coefficients.k2 < coefficients.k2);
    }

    #[test]
    fn gpu_daemon_reports_oom_for_oversized_blocks() {
        let key = KeyGenerator::new(0).key_for(0, 2);
        let mut d = Daemon::new("g1", presets::gpu_v100("g1"), key);
        d.start();
        let oversized = vec![Triplet::new(0, 1, 0.0, 0.0, 1.0); presets::GPU_MEMORY_ITEMS + 1];
        let block = TripletBlockRef {
            index: 0,
            triplets: &oversized,
        };
        assert!(matches!(
            d.execute_gen(&Relax, block, 0),
            Err(AccelError::OutOfMemory { .. })
        ));
    }
}
