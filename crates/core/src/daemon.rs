//! The computation daemon (§II-A1).
//!
//! "A daemon represents an accelerator, where graph algorithms are executed."
//! A [`Daemon`] wraps one pluggable [`AcceleratorBackend`], holds an instance
//! of the algorithm template for the duration of a run, and keeps the device
//! context alive across iterations (runtime isolation, §IV-C) so that
//! initialisation is paid once per daemon lifetime rather than once per call.
//!
//! The daemon executes the template's three APIs over blocks of data:
//! `MSGGen` over triplet blocks on the backend, `MSGMerge` combining the
//! resulting messages, and `MSGApply` over vertex blocks.
//!
//! # Backend-independent determinism
//!
//! A backend may execute a launch in parallel chunks
//! ([`HostParallelBackend`](gxplug_accel::HostParallelBackend)); the daemon
//! stages each chunk's output in its own slot and concatenates the slots in
//! chunk-index order.  Chunks are contiguous and in order (the trait
//! contract), so the concatenated stream equals the serial item order and
//! every backend produces bit-identical message streams.

use crate::pipeline::block_size::PipelineCoefficients;
use crate::runtime::RuntimeError;
use gxplug_accel::{
    AccelError, AcceleratorBackend, ChunkSpec, CostModel, DeviceKind, KernelTiming, SimBackend,
    SimDuration,
};
use gxplug_engine::profile::RuntimeProfile;
use gxplug_engine::template::{AddressedMessage, GraphAlgorithm};
use gxplug_graph::types::{Triplet, VertexId};
use gxplug_ipc::blocks::{triplet_block_views, TripletBlockRef};
use gxplug_ipc::channel::ControlLink;
use gxplug_ipc::key::IpcKey;
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

/// Immutable description of a daemon: everything an agent needs to plan work
/// for it — splitting shares by capacity, choosing block sizes, attributing
/// pipeline time — without touching the daemon itself.
///
/// This is what makes the threaded runtime possible: while the [`Daemon`]
/// lives on its worker thread, the agent keeps a `DaemonInfo` snapshot and
/// plans against it, sending only the actual kernel work across the thread
/// boundary.
#[derive(Debug, Clone)]
pub struct DaemonInfo {
    name: String,
    kind: DeviceKind,
    key: IpcKey,
    capacity_factor: f64,
    cost: CostModel,
}

impl DaemonInfo {
    /// Snapshots the metadata of `daemon`.
    pub fn of(daemon: &Daemon) -> Self {
        Self {
            name: daemon.name.clone(),
            kind: daemon.kind(),
            key: daemon.key(),
            capacity_factor: daemon.capacity_factor(),
            cost: *daemon.backend().cost_model(),
        }
    }

    /// Daemon name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wrapped backend's device kind.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// The IPC key of the daemon's shared memory space.
    pub fn key(&self) -> IpcKey {
        self.key
    }

    /// The device's computation capacity factor `1/c_j`.
    pub fn capacity_factor(&self) -> f64 {
        self.capacity_factor
    }

    /// The device's memory capacity in items, if bounded.
    pub fn memory_capacity_items(&self) -> Option<usize> {
        self.cost.memory_capacity_items
    }

    /// Derives the Lemma-1 pipeline coefficients of this daemon when driven
    /// by an upper system with the given runtime profile.
    pub fn coefficients(&self, profile: &RuntimeProfile) -> PipelineCoefficients {
        coefficients_for(&self.cost, profile)
    }
}

/// The Lemma-1 coefficients of a device cost model under a runtime profile:
/// `k1`/`k3` come from the upper system's per-item transfer costs, `k2` and
/// `a` from the device.
fn coefficients_for(cost: &CostModel, profile: &RuntimeProfile) -> PipelineCoefficients {
    PipelineCoefficients::new(
        profile.per_item_download.as_millis().max(1e-9),
        cost.per_item_cost().as_millis().max(1e-9),
        profile.per_item_upload.as_millis().max(1e-9),
        cost.call.as_millis().max(0.0),
    )
}

/// What one `MSGGen` kernel launch produces: the generated messages plus the
/// device timing attribution.
pub type GenOutput<M> = (Vec<AddressedMessage<M>>, KernelTiming);

/// `MSGMerge` as a pure function: combines messages addressed to the same
/// vertex, preserving first-seen target order for determinism.  The merge is
/// memory-bound host work, so it does not need a device; both the serial
/// [`Agent`](crate::Agent) and the threaded runtime call this directly.
///
/// Takes any message iterator so callers can drain their pooled per-daemon
/// buffers straight into the merge without concatenating them first.
pub fn merge_addressed<V, E, A, I>(algorithm: &A, messages: I) -> Vec<AddressedMessage<A::Msg>>
where
    A: GraphAlgorithm<V, E>,
    I: IntoIterator<Item = AddressedMessage<A::Msg>>,
{
    let mut order: Vec<VertexId> = Vec::new();
    let mut merged: HashMap<VertexId, A::Msg> = HashMap::new();
    for message in messages {
        match merged.remove(&message.target) {
            Some(existing) => {
                let combined = algorithm.msg_merge(existing, message.payload);
                merged.insert(message.target, combined);
            }
            None => {
                order.push(message.target);
                merged.insert(message.target, message.payload);
            }
        }
    }
    order
        .into_iter()
        .map(|target| {
            let payload = merged.remove(&target).expect("target recorded in order");
            AddressedMessage::new(target, payload)
        })
        .collect()
}

/// Runs `MSGGen` over one *borrowed* capacity share of triplets, chunked
/// into [`TripletBlockRef`] views of `block_size`, appending the generated
/// messages (in block order) to the caller's reusable `out` buffer.  Returns
/// the number of blocks launched.  This is the unit of work an agent hands to
/// a daemon — on the calling thread in serial mode, on the daemon's worker
/// thread in threaded mode — and it copies no triplet and allocates nothing
/// beyond `out`'s amortised growth (plus per-chunk staging on multi-lane
/// backends).
///
/// # Errors
/// A block the backend rejects (e.g. [`AccelError::OutOfMemory`] for a
/// mis-sized block) is returned as [`RuntimeError::Kernel`] instead of
/// aborting the process; the agent propagates it up through
/// `process_iteration` so the run fails with a typed error.
pub fn execute_share<V, E, A>(
    daemon: &mut Daemon,
    algorithm: &A,
    share: &[Triplet<V, E>],
    block_size: usize,
    iteration: usize,
    out: &mut Vec<AddressedMessage<A::Msg>>,
) -> Result<usize, RuntimeError>
where
    V: Sync,
    E: Sync,
    A: GraphAlgorithm<V, E>,
{
    // One staging pool for the whole share: the per-chunk slots are drained
    // (capacity retained) after every block launch, so multi-lane backends
    // pay at most one slot allocation per share, not one per block.
    let mut staging = ChunkStaging::for_daemon(daemon);
    let mut blocks = 0usize;
    for block in triplet_block_views(share, block_size) {
        daemon
            .execute_gen_staged(algorithm, block, iteration, &mut staging, out)
            .map_err(|error| RuntimeError::Kernel {
                daemon: daemon.name().to_string(),
                error,
            })?;
        blocks += 1;
    }
    Ok(blocks)
}

/// Pooled per-chunk output staging for `MSGGen` launches on multi-lane
/// backends: one message slot per possible chunk.  Slots are *drained* into
/// the output buffer after each launch — their capacity survives — so a
/// staging reused across block launches stops allocating once warm.
/// Single-lane backends need no staging at all (the kernel sinks straight
/// into the output buffer); [`ChunkStaging::for_daemon`] returns an empty
/// pool for them.
#[derive(Debug)]
pub struct ChunkStaging<M> {
    slots: Vec<Mutex<Vec<AddressedMessage<M>>>>,
}

impl<M> ChunkStaging<M> {
    /// Staging sized for `daemon`'s backend.
    pub fn for_daemon(daemon: &Daemon) -> Self {
        let mut staging = Self { slots: Vec::new() };
        staging.ensure(daemon.backend().max_concurrency());
        staging
    }

    /// Grows the pool to at least `lanes` slots (no-op for `lanes <= 1`).
    fn ensure(&mut self, lanes: usize) {
        if lanes > 1 {
            while self.slots.len() < lanes {
                self.slots.push(Mutex::new(Vec::new()));
            }
        }
    }
}

/// Cumulative per-daemon counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Kernel launches issued to the device.
    pub kernel_launches: u64,
    /// Triplets processed by `MSGGen`.
    pub triplets_processed: u64,
    /// Messages produced by `MSGGen` (before merging).
    pub messages_generated: u64,
    /// Vertices updated by `MSGApply`.
    pub vertices_applied: u64,
}

/// A computation daemon bound to one accelerator backend.
#[derive(Debug)]
pub struct Daemon {
    name: String,
    backend: Box<dyn AcceleratorBackend>,
    key: IpcKey,
    link: Option<ControlLink>,
    started: bool,
    stats: DaemonStats,
}

/// Locks a mutex, recovering from poisoning (a panicking kernel unwinds the
/// whole launch anyway; the slot content is never observed after a poison).
fn lock_slot<T>(slot: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    slot.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Daemon {
    /// Creates a daemon for an accelerator, addressed by the System-V-style
    /// `key`.  Accepts anything that converts into a boxed backend: a
    /// [`DeviceSpec`](gxplug_accel::DeviceSpec) (built here), a concrete
    /// backend, or an already-boxed one.
    pub fn new(
        name: impl Into<String>,
        device: impl Into<Box<dyn AcceleratorBackend>>,
        key: IpcKey,
    ) -> Self {
        Self {
            name: name.into(),
            backend: device.into(),
            key,
            link: None,
            started: false,
            stats: DaemonStats::default(),
        }
    }

    /// Attaches the daemon side of a control link (for protocol-level tests
    /// and the threaded pipeline).
    pub fn with_link(mut self, link: ControlLink) -> Self {
        self.link = Some(link);
        self
    }

    /// Daemon name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The IPC key of this daemon's shared memory space.
    pub fn key(&self) -> IpcKey {
        self.key
    }

    /// The wrapped accelerator backend.
    pub fn backend(&self) -> &dyn AcceleratorBackend {
        self.backend.as_ref()
    }

    /// The device kind (GPU / CPU / FPGA).
    pub fn kind(&self) -> DeviceKind {
        self.backend.kind()
    }

    /// The device's computation capacity factor `1/c_j`.
    pub fn capacity_factor(&self) -> f64 {
        self.backend.capacity_factor()
    }

    /// Whether [`Daemon::start`] has been called.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DaemonStats {
        self.stats
    }

    /// The control link, if attached.
    pub fn link(&self) -> Option<&ControlLink> {
        self.link.as_ref()
    }

    /// Starts the daemon: initialises the device context once.  Returns the
    /// initialisation time (zero if already started).
    ///
    /// Under runtime isolation the daemon outlives upper-system calls, so
    /// this cost is paid exactly once per run; the naive "raw call"
    /// integration of Fig. 13 instead pays it on every iteration.
    pub fn start(&mut self) -> SimDuration {
        self.started = true;
        self.backend.initialize()
    }

    /// Stops the daemon and tears down the device context.  Idempotent: a
    /// daemon that was never started (or is already shut down) is left
    /// untouched, so a session can be closed any number of times — and the
    /// automatic shutdown in [`Daemon`]'s `Drop` never double-tears a
    /// context that an explicit `shutdown` already released.
    pub fn shutdown(&mut self) {
        if self.started {
            self.started = false;
            self.backend.shutdown();
        }
    }

    /// Unwraps the daemon back into its backend *without* tearing the device
    /// context down — the check-in path of a shared device pool, where a
    /// context initialised by one job must stay warm for the next.  The
    /// inverse of wrapping a pooled backend via [`Daemon::new`].
    pub fn into_backend(mut self) -> Box<dyn AcceleratorBackend> {
        // Disarm the automatic teardown: `Drop` shuts down started daemons,
        // and this context must survive the round trip through the pool.
        self.started = false;
        let placeholder: Box<dyn AcceleratorBackend> = Box::new(SimBackend::new(
            String::new(),
            self.backend.kind(),
            *self.backend.cost_model(),
        ));
        std::mem::replace(&mut self.backend, placeholder)
    }

    /// Snapshots the planning metadata of this daemon (see [`DaemonInfo`]).
    pub fn info(&self) -> DaemonInfo {
        DaemonInfo::of(self)
    }

    /// Derives the Lemma-1 pipeline coefficients of this agent–daemon pair
    /// (no snapshot is built: this sits in the serial agent's per-iteration
    /// loop).
    pub fn coefficients(&self, profile: &RuntimeProfile) -> PipelineCoefficients {
        coefficients_for(self.backend.cost_model(), profile)
    }

    /// `MSGGen` over one borrowed triplet block: runs the kernel on the
    /// backend and returns the generated messages together with the device
    /// timing.
    pub fn execute_gen<V, E, A>(
        &mut self,
        algorithm: &A,
        block: TripletBlockRef<'_, V, E>,
        iteration: usize,
    ) -> Result<GenOutput<A::Msg>, AccelError>
    where
        V: Sync,
        E: Sync,
        A: GraphAlgorithm<V, E>,
    {
        let mut messages: Vec<AddressedMessage<A::Msg>> = Vec::new();
        let timing = self.execute_gen_into(algorithm, block, iteration, &mut messages)?;
        Ok((messages, timing))
    }

    /// `MSGGen` over one borrowed triplet block, appending the generated
    /// messages to the caller's reusable `out` buffer — the zero-copy variant
    /// of [`Daemon::execute_gen`]: the triplets are read in place from the
    /// block view.
    ///
    /// On a single-lane backend (e.g.
    /// [`SimBackend`](gxplug_accel::SimBackend)) the kernel appends straight
    /// into `out`, allocating nothing per launch.  On a multi-lane backend
    /// each chunk writes its own staging slot and the slots drain into `out`
    /// in chunk order, so the message stream — and everything merged from it —
    /// is bit-identical whichever backend executes the launch.
    pub fn execute_gen_into<V, E, A>(
        &mut self,
        algorithm: &A,
        block: TripletBlockRef<'_, V, E>,
        iteration: usize,
        out: &mut Vec<AddressedMessage<A::Msg>>,
    ) -> Result<KernelTiming, AccelError>
    where
        V: Sync,
        E: Sync,
        A: GraphAlgorithm<V, E>,
    {
        let mut staging = ChunkStaging::for_daemon(self);
        self.execute_gen_staged(algorithm, block, iteration, &mut staging, out)
    }

    /// [`Daemon::execute_gen_into`] with caller-pooled chunk staging: the
    /// variant [`execute_share`] drives, reusing one [`ChunkStaging`] across
    /// every block launch of a share.
    pub fn execute_gen_staged<V, E, A>(
        &mut self,
        algorithm: &A,
        block: TripletBlockRef<'_, V, E>,
        iteration: usize,
        staging: &mut ChunkStaging<A::Msg>,
        out: &mut Vec<AddressedMessage<A::Msg>>,
    ) -> Result<KernelTiming, AccelError>
    where
        V: Sync,
        E: Sync,
        A: GraphAlgorithm<V, E>,
    {
        let triplets = block.triplets;
        let before = out.len();
        let lanes = self.backend.max_concurrency();
        let timing = if lanes <= 1 {
            // Single chunk on the calling thread: sink directly into `out`,
            // no staging.  The mutex is uncontended (locked once per launch).
            let sink = Mutex::new(&mut *out);
            self.backend.launch(triplets.len(), &|chunk: ChunkSpec| {
                let mut sink = lock_slot(&sink);
                for triplet in &triplets[chunk.range] {
                    sink.extend(algorithm.msg_gen(triplet, iteration));
                }
            })?
        } else {
            // One staging slot per possible chunk; each chunk locks only its
            // own slot, so the locks never contend and the content per slot
            // is deterministic.
            staging.ensure(lanes);
            let slots = &staging.slots;
            let timing = self.backend.launch(triplets.len(), &|chunk: ChunkSpec| {
                let mut slot = lock_slot(&slots[chunk.index]);
                for triplet in &triplets[chunk.range] {
                    slot.extend(algorithm.msg_gen(triplet, iteration));
                }
            })?;
            // Drain in chunk order — serial item order by the chunk
            // contract.  `append` leaves each slot empty with its capacity
            // intact for the next launch.
            for slot in slots {
                out.append(&mut lock_slot(slot));
            }
            timing
        };
        self.stats.kernel_launches += 1;
        self.stats.triplets_processed += block.len() as u64;
        self.stats.messages_generated += (out.len() - before) as u64;
        Ok(timing)
    }

    /// `MSGMerge`: combines messages addressed to the same vertex.  The merge
    /// runs on the daemon's host side (it is memory-bound, not compute-bound)
    /// and preserves first-seen target order for determinism.  Delegates to
    /// the free function [`merge_addressed`].
    pub fn merge_messages<V, E, A>(
        &mut self,
        algorithm: &A,
        messages: Vec<AddressedMessage<A::Msg>>,
    ) -> Vec<AddressedMessage<A::Msg>>
    where
        A: GraphAlgorithm<V, E>,
    {
        merge_addressed(algorithm, messages)
    }

    /// `MSGApply` over a batch of `(vertex, current value, merged message)`
    /// entries: runs the apply kernel on the backend and returns the vertices
    /// whose value changed (in input order), with the device timing.
    pub fn execute_apply<V, E, A>(
        &mut self,
        algorithm: &A,
        batch: &[(VertexId, V, A::Msg)],
        iteration: usize,
    ) -> Result<(Vec<(VertexId, V)>, KernelTiming), AccelError>
    where
        V: Clone + Send + Sync,
        A: GraphAlgorithm<V, E>,
    {
        let lanes = self.backend.max_concurrency().max(1);
        let slots: Vec<Mutex<Vec<(VertexId, V)>>> =
            (0..lanes).map(|_| Mutex::new(Vec::new())).collect();
        let timing = self.backend.launch(batch.len(), &|chunk: ChunkSpec| {
            let mut slot = lock_slot(&slots[chunk.index]);
            for (vertex, current, message) in &batch[chunk.range] {
                if let Some(new_value) = algorithm.msg_apply(*vertex, current, message, iteration) {
                    slot.push((*vertex, new_value));
                }
            }
        })?;
        self.stats.kernel_launches += 1;
        let mut updated: Vec<(VertexId, V)> = Vec::new();
        for slot in slots {
            updated.append(&mut slot.into_inner().unwrap_or_else(PoisonError::into_inner));
        }
        self.stats.vertices_applied += updated.len() as u64;
        Ok((updated, timing))
    }
}

impl Drop for Daemon {
    /// A dropped daemon tears its device context down.  This is what lets a
    /// pooled worker session be dropped (or lost to a panicking job) without
    /// leaking live device contexts: the daemons go down with it, whether or
    /// not [`Daemon::shutdown`] was called explicitly first.
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gxplug_accel::{presets, BackendKind, DeviceSpec};
    use gxplug_engine::template::AddressedMessage;
    use gxplug_graph::types::Triplet;
    use gxplug_ipc::key::KeyGenerator;

    /// Min-distance relaxation used to exercise the daemon APIs.
    struct Relax;

    impl GraphAlgorithm<f64, f64> for Relax {
        type Msg = f64;
        fn init_vertex(&self, _v: VertexId, _d: usize) -> f64 {
            f64::INFINITY
        }
        fn msg_gen(&self, t: &Triplet<f64, f64>, _i: usize) -> Vec<AddressedMessage<f64>> {
            if t.src_attr.is_finite() {
                vec![AddressedMessage::new(t.dst, t.src_attr + t.edge_attr)]
            } else {
                Vec::new()
            }
        }
        fn msg_merge(&self, a: f64, b: f64) -> f64 {
            a.min(b)
        }
        fn msg_apply(&self, _v: VertexId, cur: &f64, msg: &f64, _i: usize) -> Option<f64> {
            (msg < cur).then_some(*msg)
        }
        fn name(&self) -> &'static str {
            "relax"
        }
    }

    fn daemon() -> Daemon {
        let key = KeyGenerator::new(0).key_for(0, 0);
        Daemon::new("d0", presets::cpu_xeon_20c("c0"), key)
    }

    fn triplets() -> Vec<Triplet<f64, f64>> {
        vec![
            Triplet::new(0, 1, 0.0, f64::INFINITY, 2.0),
            Triplet::new(0, 2, 0.0, f64::INFINITY, 5.0),
            Triplet::new(3, 1, f64::INFINITY, f64::INFINITY, 1.0),
            Triplet::new(2, 1, 7.0, f64::INFINITY, 1.0),
        ]
    }

    #[test]
    fn start_pays_init_once() {
        let mut d = daemon();
        assert!(!d.is_started());
        let first = d.start();
        assert!(first > SimDuration::ZERO);
        assert!(d.is_started());
        let second = d.start();
        assert!(second.is_zero());
        d.shutdown();
        assert!(!d.is_started());
        assert!(d.start() > SimDuration::ZERO);
    }

    #[test]
    fn execute_gen_produces_real_messages() {
        let mut d = daemon();
        d.start();
        let triplets = triplets();
        let block = TripletBlockRef {
            index: 0,
            triplets: &triplets,
        };
        let (messages, timing) = d.execute_gen(&Relax, block, 0).unwrap();
        // The triplet with an infinite source produces nothing.
        assert_eq!(messages.len(), 3);
        assert!(timing.total() > SimDuration::ZERO);
        assert!(timing.init.is_zero());
        assert_eq!(d.stats().triplets_processed, 4);
        assert_eq!(d.stats().messages_generated, 3);
    }

    #[test]
    fn gen_output_is_identical_across_backends() {
        // A batch large enough that the host-parallel backend really splits
        // it into several chunks; message order (and content) must match the
        // sim backend's exactly.
        let triplets: Vec<Triplet<f64, f64>> = (0..4_096u32)
            .map(|i| Triplet::new(i, (i * 7) % 4_096, (i % 13) as f64, f64::INFINITY, 1.0))
            .collect();
        let keys = KeyGenerator::new(3);
        let run = |backend: BackendKind| {
            let spec = presets::cpu_xeon_20c("c").with_backend(backend);
            let mut d = Daemon::new("d", spec, keys.key_for(0, 0));
            d.start();
            let block = TripletBlockRef {
                index: 0,
                triplets: &triplets,
            };
            d.execute_gen(&Relax, block, 0).unwrap().0
        };
        let sim = run(BackendKind::Sim);
        let parallel = run(BackendKind::HostParallel { threads: Some(4) });
        assert_eq!(sim.len(), parallel.len());
        for (a, b) in sim.iter().zip(&parallel) {
            assert_eq!(a.target, b.target);
            assert_eq!(a.payload.to_bits(), b.payload.to_bits());
        }
    }

    #[test]
    fn merge_keeps_the_minimum_per_target() {
        let mut d = daemon();
        let merged = d.merge_messages::<f64, f64, Relax>(
            &Relax,
            vec![
                AddressedMessage::new(1, 2.0),
                AddressedMessage::new(2, 5.0),
                AddressedMessage::new(1, 8.0),
                AddressedMessage::new(1, 1.0),
            ],
        );
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].target, 1);
        assert_eq!(merged[0].payload, 1.0);
        assert_eq!(merged[1].target, 2);
        assert_eq!(merged[1].payload, 5.0);
    }

    #[test]
    fn execute_apply_returns_only_changed_vertices() {
        let mut d = daemon();
        d.start();
        let batch = vec![(1u32, f64::INFINITY, 2.0f64), (2, 1.0, 5.0), (3, 9.0, 4.0)];
        let (updated, _timing) = d.execute_apply(&Relax, &batch, 0).unwrap();
        assert_eq!(updated, vec![(1, 2.0), (3, 4.0)]);
        assert_eq!(d.stats().vertices_applied, 2);
    }

    #[test]
    fn coefficients_reflect_device_and_profile() {
        let d = daemon();
        let coefficients = d.coefficients(&RuntimeProfile::powergraph());
        assert!(coefficients.k2 > 0.0);
        assert!(coefficients.a >= 0.0);
        // GPU daemons have a larger call constant than CPU daemons.
        let key = KeyGenerator::new(0).key_for(0, 1);
        let gpu = Daemon::new("g0", presets::gpu_v100("g"), key);
        let gpu_coefficients = gpu.coefficients(&RuntimeProfile::powergraph());
        assert!(gpu_coefficients.a > coefficients.a);
        assert!(gpu_coefficients.k2 < coefficients.k2);
    }

    #[test]
    fn daemons_accept_specs_and_live_backends() {
        let keys = KeyGenerator::new(4);
        let spec: DeviceSpec = presets::gpu_v100("g");
        let from_spec = Daemon::new("a", spec.clone(), keys.key_for(0, 0));
        let from_backend = Daemon::new(
            "b",
            gxplug_accel::SimBackend::from_spec(&spec),
            keys.key_for(0, 1),
        );
        assert_eq!(from_spec.kind(), from_backend.kind());
        assert_eq!(from_spec.capacity_factor(), from_backend.capacity_factor());
    }

    #[test]
    fn gpu_daemon_reports_oom_for_oversized_blocks() {
        let key = KeyGenerator::new(0).key_for(0, 2);
        let mut d = Daemon::new("g1", presets::gpu_v100("g1"), key);
        d.start();
        let oversized = vec![Triplet::new(0, 1, 0.0, 0.0, 1.0); presets::GPU_MEMORY_ITEMS + 1];
        let block = TripletBlockRef {
            index: 0,
            triplets: &oversized,
        };
        assert!(matches!(
            d.execute_gen(&Relax, block, 0),
            Err(AccelError::OutOfMemory { .. })
        ));
    }
}
