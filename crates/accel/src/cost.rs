//! Analytic cost model for accelerator devices.
//!
//! The paper models the compute thread's cost of one block as
//! `Tc(b) = Tcall + Tcomp(b) + Tcopy(b)` (§III-A2c): a constant device-call
//! cost plus copy and compute terms proportional to the block size.  The
//! [`CostModel`] here captures exactly those coefficients plus the device's
//! parallel width and (optional) memory capacity, so the middleware's
//! block-size and workload-balancing analyses operate on the same quantities
//! as the paper's.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Cost coefficients of a single accelerator device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// One-off cost of initialising the device context (CUDA context
    /// creation, JIT, memory pools).  Paid once per daemon lifetime under
    /// runtime isolation, or once per call in the naive "raw call" setup
    /// (Fig. 13).
    pub init: SimDuration,
    /// Constant cost of launching one kernel / calling the device
    /// (`Tcall`, the paper's `a`).
    pub call: SimDuration,
    /// Cost of moving one data entity between host and device memory
    /// (`Tcopy` per item).
    pub copy_per_item: SimDuration,
    /// Cost of processing one data entity on a *single* lane
    /// (`Tcomp` per item before dividing by the parallel width).
    pub compute_per_item: SimDuration,
    /// Number of hardware lanes (threads, CUDA cores grouped as schedulable
    /// threads — the paper models the V100 as a "1024-thread multithread
    /// processing model" and the Xeon as 20 threads).
    pub lanes: u32,
    /// Fraction of the ideal `lanes`-way speed-up actually achieved
    /// (memory-bound kernels, divergence, scheduling overhead).
    pub parallel_efficiency: f64,
    /// Device memory capacity expressed in data entities; `None` means
    /// "large enough for every workload we run".  Used to reproduce the
    /// out-of-memory behaviour of single-GPU systems on Twitter/UK-2007
    /// (Fig. 9b).
    pub memory_capacity_items: Option<usize>,
}

impl CostModel {
    /// Effective number of items processed concurrently.
    pub fn effective_lanes(&self) -> f64 {
        (self.lanes as f64 * self.parallel_efficiency).max(1.0)
    }

    /// Compute time for `n` items (`Tcomp(n)`), assuming perfect lane
    /// utilisation at `effective_lanes`.
    pub fn compute_time(&self, n: usize) -> SimDuration {
        self.compute_per_item * (n as f64 / self.effective_lanes())
    }

    /// Host/device transfer time for `n` items (`Tcopy(n)`).
    pub fn copy_time(&self, n: usize) -> SimDuration {
        self.copy_per_item * n as f64
    }

    /// Total time of one kernel invocation over `n` items, excluding
    /// initialisation: `Tcall + Tcomp(n) + Tcopy(n)`.
    pub fn invocation_time(&self, n: usize) -> SimDuration {
        self.call + self.compute_time(n) + self.copy_time(n)
    }

    /// Marginal per-item processing cost (the `k2`-style coefficient seen by
    /// the block-size analysis): compute plus copy per item.
    pub fn per_item_cost(&self) -> SimDuration {
        SimDuration::from_millis(
            self.compute_per_item.as_millis() / self.effective_lanes()
                + self.copy_per_item.as_millis(),
        )
    }

    /// The *computation capacity factor* `1/c_j` of §III-C: data entities
    /// processed per simulated millisecond in steady state.
    pub fn capacity_factor(&self) -> f64 {
        1.0 / self.per_item_cost().as_millis()
    }

    /// Returns `true` if `n` items exceed the device memory capacity.
    pub fn exceeds_memory(&self, n: usize) -> bool {
        match self.memory_capacity_items {
            Some(cap) => n > cap,
            None => false,
        }
    }

    /// Returns a copy with a different memory capacity.
    pub fn with_memory_capacity(mut self, items: Option<usize>) -> Self {
        self.memory_capacity_items = items;
        self
    }

    /// Returns a copy with the initialisation cost scaled by `factor`
    /// (useful in tests and ablations).
    pub fn with_init_scaled(mut self, factor: f64) -> Self {
        self.init = self.init * factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel {
            init: SimDuration::from_millis(100.0),
            call: SimDuration::from_millis(1.0),
            copy_per_item: SimDuration::from_micros(1.0),
            compute_per_item: SimDuration::from_micros(10.0),
            lanes: 10,
            parallel_efficiency: 0.5,
            memory_capacity_items: Some(1_000),
        }
    }

    #[test]
    fn effective_lanes_respects_efficiency() {
        assert_eq!(model().effective_lanes(), 5.0);
        let serial = CostModel {
            lanes: 1,
            parallel_efficiency: 0.1,
            ..model()
        };
        // Never below one lane.
        assert_eq!(serial.effective_lanes(), 1.0);
    }

    #[test]
    fn invocation_time_follows_tcall_plus_linear_terms() {
        let m = model();
        let t = m.invocation_time(1_000);
        // call = 1 ms, compute = 1000 * 0.01 / 5 = 2 ms, copy = 1000 * 0.001 = 1 ms.
        assert!((t.as_millis() - 4.0).abs() < 1e-9, "{}", t.as_millis());
        assert!(m.invocation_time(0).as_millis() >= m.call.as_millis());
    }

    #[test]
    fn capacity_factor_is_items_per_millisecond() {
        let m = model();
        // per item: 0.01/5 + 0.001 = 0.003 ms -> 333.3 items/ms.
        assert!((m.capacity_factor() - 1.0 / 0.003).abs() < 1e-6);
    }

    #[test]
    fn memory_capacity_detection() {
        let m = model();
        assert!(!m.exceeds_memory(1_000));
        assert!(m.exceeds_memory(1_001));
        assert!(!m.with_memory_capacity(None).exceeds_memory(usize::MAX));
    }

    #[test]
    fn init_scaling() {
        let m = model().with_init_scaled(0.0);
        assert!(m.init.is_zero());
    }
}
