//! The pluggable accelerator backend API.
//!
//! The paper's daemons are "abstract representations of accelerators" (§I):
//! the middleware is supposed to work with *any* device that can execute the
//! kernel ABI, not with one hard-coded cost model.  This module is that seam.
//! [`AcceleratorBackend`] is the object-safe trait the daemon layer drives;
//! [`DeviceSpec`] is the serializable descriptor a deployment is built from;
//! and two backends ship behind the same ABI:
//!
//! * [`SimBackend`] — the cost-model device of the earlier PRs: kernels run
//!   for real on the calling thread, time is attributed analytically, results
//!   are bit-identical to the pre-trait middleware;
//! * [`HostParallelBackend`] — the first backend where *wall-clock* time
//!   improves: each kernel launch is split into contiguous chunks executed
//!   across OS threads, with deterministic per-chunk output ordering so the
//!   results stay bit-identical to [`SimBackend`].
//!
//! # The kernel ABI
//!
//! A launch is described as `items` independent data entities plus a chunk
//! kernel.  The backend partitions `0..items` into contiguous, disjoint,
//! in-order chunks — chunk `i` covers the items right after chunk `i - 1`,
//! chunk indices are dense `0..chunks`, and `chunks` never exceeds
//! [`AcceleratorBackend::max_concurrency`] — and invokes the kernel once per
//! chunk, possibly concurrently.  Callers that need ordered output collect
//! per-chunk results and concatenate them in chunk-index order, which equals
//! the serial item order by construction.  This is what makes backends
//! interchangeable without touching the determinism guarantees.

use crate::cost::CostModel;
use crate::device::{AccelError, DeviceKind, KernelRun, KernelTiming, Result};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// One chunk of a kernel launch: which slice of the batch to process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkSpec {
    /// Dense chunk index, `0..chunks`.
    pub index: usize,
    /// Total number of chunks of this launch.
    pub chunks: usize,
    /// The item range this chunk covers.  Chunks are contiguous, disjoint
    /// and in order: concatenating them in index order yields `0..items`.
    pub range: Range<usize>,
}

/// The kernel a backend executes per chunk.  It must be `Sync`: a parallel
/// backend invokes it from several threads at once (with distinct chunks).
pub type ChunkKernel<'a> = dyn Fn(ChunkSpec) + Sync + 'a;

/// Which backend implementation a [`DeviceSpec`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// The cost-model backend: kernels run on the calling thread, timing is
    /// analytic ([`SimBackend`]).
    Sim,
    /// Kernels execute for real across OS threads ([`HostParallelBackend`]).
    HostParallel {
        /// Worker threads per launch; `None` picks the host's available
        /// parallelism (capped by the cost model's `lanes`).
        threads: Option<usize>,
    },
}

impl BackendKind {
    /// The host-parallel backend with automatically chosen thread count.
    pub fn host_parallel() -> Self {
        BackendKind::HostParallel { threads: None }
    }

    /// Stable lowercase label (used in benchmark records and reports).
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::HostParallel { .. } => "host-parallel",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Serializable descriptor of one accelerator: everything needed to
/// construct (or reconstruct) a backend.  Deployments — sessions, registries,
/// the workload balancer — traffic in specs and only build live backends at
/// daemon-creation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Device name (e.g. `"node0-gpu0"`).
    pub name: String,
    /// Hardware flavour.
    pub kind: DeviceKind,
    /// Analytic cost model (also the planning model for capacity splits and
    /// block sizing, whichever backend executes the kernels).
    pub cost: CostModel,
    /// Which backend implementation to build.
    pub backend: BackendKind,
}

impl DeviceSpec {
    /// Creates a spec with the default [`BackendKind::Sim`] backend.
    pub fn new(name: impl Into<String>, kind: DeviceKind, cost: CostModel) -> Self {
        Self {
            name: name.into(),
            kind,
            cost,
            backend: BackendKind::Sim,
        }
    }

    /// Returns the spec with a different backend selection.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// The computation capacity factor `1/c_j` (§III-C) of this device.
    pub fn capacity_factor(&self) -> f64 {
        self.cost.capacity_factor()
    }

    /// The cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Builds the live backend this spec describes.
    pub fn build(&self) -> Box<dyn AcceleratorBackend> {
        match self.backend {
            BackendKind::Sim => Box::new(SimBackend::new(self.name.clone(), self.kind, self.cost)),
            BackendKind::HostParallel { threads } => Box::new(HostParallelBackend::new(
                self.name.clone(),
                self.kind,
                self.cost,
                threads,
            )),
        }
    }
}

impl From<DeviceSpec> for Box<dyn AcceleratorBackend> {
    fn from(spec: DeviceSpec) -> Self {
        spec.build()
    }
}

impl From<SimBackend> for Box<dyn AcceleratorBackend> {
    fn from(backend: SimBackend) -> Self {
        Box::new(backend)
    }
}

impl From<HostParallelBackend> for Box<dyn AcceleratorBackend> {
    fn from(backend: HostParallelBackend) -> Self {
        Box::new(backend)
    }
}

/// The kernel ABI a GX-Plug daemon drives.  Implementations execute kernels
/// for real; how much host parallelism they use — and what hardware they
/// would map to in a non-simulated deployment — is entirely their business.
///
/// # Contract
///
/// * [`launch`](Self::launch) partitions `0..items` into contiguous,
///   disjoint, in-order chunks with dense indices `0..chunks`, where
///   `chunks <= max_concurrency()`, and invokes the kernel once per chunk
///   (possibly concurrently).  Every chunk is invoked exactly once before
///   `launch` returns.
/// * A launch that exceeds the device memory capacity fails with
///   [`AccelError::OutOfMemory`] *without* invoking the kernel.
/// * The first (successful) launch after construction or
///   [`shutdown`](Self::shutdown) pays the cost model's initialisation time
///   in its [`KernelTiming::init`]; later launches report zero init.
/// * Reported timing comes from the device's [`CostModel`] for every
///   backend, so simulated time attribution is backend-independent; real
///   backends improve *wall-clock* time, which benchmarks measure directly.
pub trait AcceleratorBackend: Send + fmt::Debug {
    /// Device name (e.g. `"node0-gpu0"`).
    fn name(&self) -> &str;

    /// Hardware flavour this backend represents.
    fn kind(&self) -> DeviceKind;

    /// The analytic cost model used for planning and time attribution.
    fn cost_model(&self) -> &CostModel;

    /// The serializable descriptor that would rebuild this backend.
    fn spec(&self) -> DeviceSpec;

    /// Whether the device context is currently initialised.
    fn is_initialized(&self) -> bool;

    /// Initialises the device context if necessary and returns the time it
    /// took (zero when already initialised).  Daemons call this once per
    /// lifetime — runtime isolation, §IV-C.
    fn initialize(&mut self) -> SimDuration;

    /// Tears down the device context (the next launch pays init again).
    fn shutdown(&mut self);

    /// Upper bound on the number of chunks a launch is split into.  Callers
    /// size their per-chunk output staging with this.
    fn max_concurrency(&self) -> usize;

    /// Executes one kernel launch over `items` data entities (see the trait
    /// contract for the chunking rules).
    ///
    /// # Errors
    /// [`AccelError::OutOfMemory`] when `items` exceeds the device memory.
    fn launch(&mut self, items: usize, kernel: &ChunkKernel<'_>) -> Result<KernelTiming>;

    /// Cumulative number of items processed (for utilisation metrics).
    fn items_processed(&self) -> u64;

    /// Cumulative number of kernel launches.
    fn kernel_launches(&self) -> u64;

    /// The computation capacity factor `1/c_j` (§III-C) of this device.
    fn capacity_factor(&self) -> f64 {
        self.cost_model().capacity_factor()
    }

    /// Estimated time of a kernel over `n` items, excluding pending
    /// initialisation (used by block sizing and the workload balancer).
    fn estimate_invocation(&self, n: usize) -> SimDuration {
        self.cost_model().invocation_time(n)
    }

    /// Device memory capacity in items, if bounded.
    fn memory_capacity_items(&self) -> Option<usize> {
        self.cost_model().memory_capacity_items
    }
}

/// Fails with [`AccelError::OutOfMemory`] if a batch of `n` items exceeds
/// the cost model's device memory.
fn check_memory(cost: &CostModel, name: &str, n: usize) -> Result<()> {
    if cost.exceeds_memory(n) {
        return Err(AccelError::OutOfMemory {
            requested: n,
            capacity: cost.memory_capacity_items.unwrap_or(0),
            device: name.to_string(),
        });
    }
    Ok(())
}

/// Timing attribution shared by every backend: initialisation (if pending)
/// plus `Tcall + Tcopy(n) + Tcomp(n)` from the cost model.
fn cost_timing(cost: &CostModel, init: SimDuration, n: usize) -> KernelTiming {
    KernelTiming {
        init,
        call: cost.call,
        copy: cost.copy_time(n),
        compute: cost.compute_time(n),
    }
}

/// The cost-model backend: kernels execute for real on the calling thread
/// (one chunk per launch), time is attributed through the analytic
/// [`CostModel`] so every experiment's *shape* is host-independent.
///
/// This is the `Device` of the earlier PRs behind the trait; its behaviour —
/// execution order, memory checks, stats, timing — is preserved
/// bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBackend {
    name: String,
    kind: DeviceKind,
    cost: CostModel,
    initialized: bool,
    /// Cumulative number of items processed (for utilisation metrics).
    items_processed: u64,
    /// Cumulative number of kernel launches.
    kernel_launches: u64,
}

impl SimBackend {
    /// Creates a new, uninitialised backend.
    pub fn new(name: impl Into<String>, kind: DeviceKind, cost: CostModel) -> Self {
        Self {
            name: name.into(),
            kind,
            cost,
            initialized: false,
            items_processed: 0,
            kernel_launches: 0,
        }
    }

    /// Builds the sim backend described by `spec`, ignoring the spec's
    /// backend selection (used by the baseline engines, which always
    /// simulate).
    pub fn from_spec(spec: &DeviceSpec) -> Self {
        Self::new(spec.name.clone(), spec.kind, spec.cost)
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device kind.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// The device's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The computation capacity factor `1/c_j` (§III-C) of this device.
    pub fn capacity_factor(&self) -> f64 {
        self.cost.capacity_factor()
    }

    /// Initialises the device context if necessary; see
    /// [`AcceleratorBackend::initialize`].
    pub fn initialize(&mut self) -> SimDuration {
        if self.initialized {
            SimDuration::ZERO
        } else {
            self.initialized = true;
            self.cost.init
        }
    }

    /// Executes `kernel` over every item in `batch`, collecting the outputs
    /// in input order.  Convenience wrapper over the chunk ABI used by the
    /// baseline engines and tests.
    ///
    /// # Errors
    /// [`AccelError::OutOfMemory`] if the batch exceeds device memory — the
    /// check runs *before* sizing the output buffer, so an over-capacity
    /// batch costs an error, not a giant host allocation.
    pub fn execute_batch<T, R>(
        &mut self,
        batch: &[T],
        mut kernel: impl FnMut(&T) -> R,
    ) -> Result<KernelRun<R>> {
        check_memory(&self.cost, &self.name, batch.len())?;
        let mut outputs: Vec<R> = Vec::with_capacity(batch.len());
        let timing = self.execute_batch_with(batch, |item| outputs.push(kernel(item)))?;
        Ok(KernelRun { outputs, timing })
    }

    /// Executes `per_item` over every item in `batch` without collecting
    /// outputs — the sink-style variant of [`SimBackend::execute_batch`]: the
    /// caller's closure writes results straight into its own reusable buffer,
    /// so the backend allocates nothing per launch.
    pub fn execute_batch_with<T>(
        &mut self,
        batch: &[T],
        mut per_item: impl FnMut(&T),
    ) -> Result<KernelTiming> {
        check_memory(&self.cost, &self.name, batch.len())?;
        let init = self.initialize();
        for item in batch {
            per_item(item);
        }
        self.items_processed += batch.len() as u64;
        self.kernel_launches += 1;
        Ok(cost_timing(&self.cost, init, batch.len()))
    }
}

impl AcceleratorBackend for SimBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> DeviceKind {
        self.kind
    }

    fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    fn spec(&self) -> DeviceSpec {
        DeviceSpec::new(self.name.clone(), self.kind, self.cost)
    }

    fn is_initialized(&self) -> bool {
        self.initialized
    }

    fn initialize(&mut self) -> SimDuration {
        SimBackend::initialize(self)
    }

    fn shutdown(&mut self) {
        self.initialized = false;
    }

    fn max_concurrency(&self) -> usize {
        1
    }

    fn launch(&mut self, items: usize, kernel: &ChunkKernel<'_>) -> Result<KernelTiming> {
        check_memory(&self.cost, &self.name, items)?;
        let init = self.initialize();
        kernel(ChunkSpec {
            index: 0,
            chunks: 1,
            range: 0..items,
        });
        self.items_processed += items as u64;
        self.kernel_launches += 1;
        Ok(cost_timing(&self.cost, init, items))
    }

    fn items_processed(&self) -> u64 {
        self.items_processed
    }

    fn kernel_launches(&self) -> u64 {
        self.kernel_launches
    }
}

/// Smallest chunk worth a thread of its own: below this, the spawn overhead
/// dwarfs the kernel work and the launch degenerates to a single inline
/// chunk.
const MIN_ITEMS_PER_CHUNK: usize = 256;

/// Hard cap on worker threads per launch, whatever the host reports.
const MAX_HOST_THREADS: usize = 64;

/// Locks a pool mutex, recovering from poisoning (pool bookkeeping holds its
/// invariants between operations; kernel panics are caught before they can
/// poison anything mid-update).
fn lock_pool<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Completion tracking of one launch dispatched to the worker pool.
struct LaunchState {
    progress: Mutex<LaunchProgress>,
    finished: Condvar,
}

struct LaunchProgress {
    remaining: usize,
    /// The first ferried kernel panic payload, re-raised on the launching
    /// thread (matching the panic propagation of a scoped spawn).
    panic: Option<Box<dyn Any + Send>>,
}

impl LaunchState {
    fn new(chunks: usize) -> Self {
        Self {
            progress: Mutex::new(LaunchProgress {
                remaining: chunks,
                panic: None,
            }),
            finished: Condvar::new(),
        }
    }

    /// Marks one chunk done (with its panic payload, if it unwound).
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut progress = lock_pool(&self.progress);
        progress.remaining -= 1;
        if progress.panic.is_none() {
            progress.panic = panic;
        }
        if progress.remaining == 0 {
            self.finished.notify_all();
        }
    }

    /// Blocks until every chunk completed; returns the first ferried panic.
    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut progress = lock_pool(&self.progress);
        while progress.remaining > 0 {
            progress = self
                .finished
                .wait(progress)
                .unwrap_or_else(PoisonError::into_inner);
        }
        progress.panic.take()
    }
}

/// The lifetime-erased kernel of one launch, carried to the pool workers as
/// a raw pointer.  Raw — not `&'static` — because a worker still holds the
/// job after its `complete()` call briefly unblocks the launching thread and
/// ends the kernel borrow; a leftover raw pointer is inert, while a dangling
/// reference would be a Stacked/Tree Borrows violation even undereferenced.
#[derive(Clone, Copy)]
struct KernelPtr(*const ChunkKernel<'static>);

// SAFETY: the pointee is `Sync` (`ChunkKernel` is `dyn Fn(..) + Sync`), so
// shipping the pointer to a worker thread and dereferencing it there is a
// shared borrow of a `Sync` value.  Liveness is the dispatch protocol's
// contract: workers dereference only before marking their chunk complete,
// while the launching thread is pinned in [`LaunchState::wait`].
unsafe impl Send for KernelPtr {}

/// One chunk dispatched to the pool.
struct PoolJob {
    kernel: KernelPtr,
    chunk: ChunkSpec,
    launch: Arc<LaunchState>,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signalled when jobs arrive or the pool shuts down.
    available: Condvar,
}

struct PoolQueue {
    jobs: VecDeque<PoolJob>,
    open: bool,
}

/// The persistent worker threads of a [`HostParallelBackend`]: spawned once
/// (lazily, at the first multi-chunk launch) and fed launches through a
/// shared job queue, so a workload of many small launches — a fused
/// multi-job run, a deep pipeline — pays thread-spawn cost once instead of
/// per launch.
struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(threads: usize, name: &str) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                open: true,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{name}-pool{index}"))
                    .spawn(move || pool_worker(&shared))
                    .expect("spawning a backend pool worker thread")
            })
            .collect();
        Self { shared, workers }
    }

    /// Enqueues one launch's chunks and wakes the workers.
    fn dispatch(&self, jobs: impl Iterator<Item = PoolJob>) {
        lock_pool(&self.shared.queue).jobs.extend(jobs);
        self.shared.available.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock_pool(&self.shared.queue).open = false;
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The loop of one pool worker: pop a chunk, run it (panics caught and
/// ferried to the launching thread), mark it done.
fn pool_worker(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = lock_pool(&shared.queue);
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if !queue.open {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let PoolJob {
            kernel,
            chunk,
            launch,
        } = job;
        // SAFETY: this chunk has not been marked complete yet, so the
        // launching thread is still blocked in `LaunchState::wait` and the
        // borrow behind the pointer is live.  The reference exists only for
        // this call and is gone before `complete()` releases the launcher.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*kernel.0)(chunk) }));
        launch.complete(outcome.err());
    }
}

/// The lazily-created pool slot of a [`HostParallelBackend`].  Deliberately
/// inert for the derived impls: clones start without a pool (each backend
/// owns its own threads), equality ignores it, `Debug` shows only whether it
/// is live.
#[derive(Default)]
struct PoolSlot(Option<WorkerPool>);

impl Clone for PoolSlot {
    fn clone(&self) -> Self {
        PoolSlot(None)
    }
}

impl PartialEq for PoolSlot {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl fmt::Debug for PoolSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("PoolSlot").field(&self.0.is_some()).finish()
    }
}

/// The host-parallel backend: every kernel launch is split into contiguous
/// chunks executed across a pool of long-lived OS threads (spawned at the
/// first multi-chunk launch and reused until the backend drops, so a stream
/// of small launches does not pay spawn cost per launch).  Kernels may
/// borrow the iteration's data without `'static` bounds: a launch blocks
/// until its last chunk completes, pinning the borrow.
///
/// Chunks are contiguous, disjoint and index-dense, so a caller that
/// concatenates per-chunk output in chunk order reproduces the serial item
/// order exactly — results are bit-identical to [`SimBackend`].  Simulated
/// [`KernelTiming`] still comes from the cost model (time attribution is
/// backend-independent); what this backend improves is real wall-clock time,
/// which `cargo bench` measures directly.
#[derive(Debug, Clone, PartialEq)]
pub struct HostParallelBackend {
    name: String,
    kind: DeviceKind,
    cost: CostModel,
    threads: usize,
    configured_threads: Option<usize>,
    initialized: bool,
    items_processed: u64,
    kernel_launches: u64,
    pool: PoolSlot,
}

impl HostParallelBackend {
    /// Creates the backend.  `threads = None` picks the host's available
    /// parallelism; the effective count is clamped to
    /// `1..=min(cost.lanes, 64)` — a backend cannot be more parallel than
    /// the device width it models.
    pub fn new(
        name: impl Into<String>,
        kind: DeviceKind,
        cost: CostModel,
        threads: Option<usize>,
    ) -> Self {
        let host = threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        let cap = (cost.lanes as usize).clamp(1, MAX_HOST_THREADS);
        let effective = host.clamp(1, cap);
        Self {
            name: name.into(),
            kind,
            cost,
            threads: effective,
            configured_threads: threads,
            initialized: false,
            items_processed: 0,
            kernel_launches: 0,
            pool: PoolSlot(None),
        }
    }

    /// Builds the backend described by `spec` (the spec's backend selection
    /// decides the thread count; a `Sim` spec gets automatic threads).
    pub fn from_spec(spec: &DeviceSpec) -> Self {
        let threads = match spec.backend {
            BackendKind::HostParallel { threads } => threads,
            BackendKind::Sim => None,
        };
        Self::new(spec.name.clone(), spec.kind, spec.cost, threads)
    }

    /// The effective number of worker threads per launch.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl AcceleratorBackend for HostParallelBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> DeviceKind {
        self.kind
    }

    fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    fn spec(&self) -> DeviceSpec {
        DeviceSpec::new(self.name.clone(), self.kind, self.cost).with_backend(
            BackendKind::HostParallel {
                threads: self.configured_threads,
            },
        )
    }

    fn is_initialized(&self) -> bool {
        self.initialized
    }

    fn initialize(&mut self) -> SimDuration {
        if self.initialized {
            SimDuration::ZERO
        } else {
            self.initialized = true;
            self.cost.init
        }
    }

    fn shutdown(&mut self) {
        self.initialized = false;
    }

    fn max_concurrency(&self) -> usize {
        self.threads
    }

    fn launch(&mut self, items: usize, kernel: &ChunkKernel<'_>) -> Result<KernelTiming> {
        check_memory(&self.cost, &self.name, items)?;
        let init = self.initialize();
        let chunks = self.threads.min(items.div_ceil(MIN_ITEMS_PER_CHUNK)).max(1);
        if chunks == 1 {
            kernel(ChunkSpec {
                index: 0,
                chunks: 1,
                range: 0..items,
            });
        } else {
            let pool = self
                .pool
                .0
                .get_or_insert_with(|| WorkerPool::new(self.threads, &self.name));
            // Erase the kernel borrow's lifetime into a raw pointer.  The
            // pool workers dereference it only between the dispatch below
            // and the `launch_state.wait()` that follows, and `wait` does
            // not return until every chunk completed — the borrow strictly
            // outlives every dereference.
            let kernel = KernelPtr(unsafe {
                std::mem::transmute::<*const ChunkKernel<'_>, *const ChunkKernel<'static>>(
                    kernel as *const ChunkKernel<'_>,
                )
            });
            let launch_state = Arc::new(LaunchState::new(chunks));
            // Contiguous even split: the first `rem` chunks take one extra
            // item, so concatenating ranges in index order covers 0..items.
            let base = items / chunks;
            let rem = items % chunks;
            let mut start = 0usize;
            pool.dispatch((0..chunks).map(|index| {
                let len = base + usize::from(index < rem);
                let range = start..start + len;
                start += len;
                PoolJob {
                    kernel,
                    chunk: ChunkSpec {
                        index,
                        chunks,
                        range,
                    },
                    launch: Arc::clone(&launch_state),
                }
            }));
            if let Some(payload) = launch_state.wait() {
                // A panicking kernel unwinds the launching thread, exactly
                // as it did under the scoped-spawn implementation.
                resume_unwind(payload);
            }
        }
        self.items_processed += items as u64;
        self.kernel_launches += 1;
        Ok(cost_timing(&self.cost, init, items))
    }

    fn items_processed(&self) -> u64 {
        self.items_processed
    }

    fn kernel_launches(&self) -> u64 {
        self.kernel_launches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn cost() -> CostModel {
        CostModel {
            init: SimDuration::from_millis(50.0),
            call: SimDuration::from_millis(1.0),
            copy_per_item: SimDuration::from_micros(1.0),
            compute_per_item: SimDuration::from_micros(10.0),
            lanes: 100,
            parallel_efficiency: 1.0,
            memory_capacity_items: Some(10_000),
        }
    }

    fn spec(backend: BackendKind) -> DeviceSpec {
        DeviceSpec::new("test-dev", DeviceKind::Gpu, cost()).with_backend(backend)
    }

    /// Collects the chunk ranges a backend hands out for `items`.
    fn observed_chunks(backend: &mut dyn AcceleratorBackend, items: usize) -> Vec<ChunkSpec> {
        let seen: Mutex<Vec<ChunkSpec>> = Mutex::new(Vec::new());
        backend
            .launch(items, &|chunk| seen.lock().unwrap().push(chunk))
            .unwrap();
        let mut chunks = seen.into_inner().unwrap();
        chunks.sort_by_key(|c| c.index);
        chunks
    }

    /// Chunks must be dense, contiguous, disjoint, in order, covering the
    /// whole batch — the invariant ordered output collection relies on.
    fn assert_chunk_contract(chunks: &[ChunkSpec], items: usize, max_concurrency: usize) {
        assert!(!chunks.is_empty());
        assert!(chunks.len() <= max_concurrency);
        let mut next = 0usize;
        for (i, chunk) in chunks.iter().enumerate() {
            assert_eq!(chunk.index, i);
            assert_eq!(chunk.chunks, chunks.len());
            assert_eq!(chunk.range.start, next);
            next = chunk.range.end;
        }
        assert_eq!(next, items);
    }

    #[test]
    fn both_backends_respect_the_chunk_contract() {
        for kind in [
            BackendKind::Sim,
            BackendKind::HostParallel { threads: Some(4) },
        ] {
            let mut backend = spec(kind).build();
            for items in [1usize, 255, 256, 1_000, 4_096] {
                let chunks = observed_chunks(backend.as_mut(), items);
                assert_chunk_contract(&chunks, items, backend.max_concurrency());
            }
        }
    }

    #[test]
    fn first_launch_pays_init_later_launches_do_not() {
        for kind in [BackendKind::Sim, BackendKind::host_parallel()] {
            let mut backend = spec(kind).build();
            assert!(!backend.is_initialized());
            let first = backend.launch(100, &|_| {}).unwrap();
            assert_eq!(first.init.as_millis(), 50.0);
            let second = backend.launch(100, &|_| {}).unwrap();
            assert!(second.init.is_zero());
            backend.shutdown();
            let third = backend.launch(100, &|_| {}).unwrap();
            assert_eq!(third.init.as_millis(), 50.0);
            assert_eq!(backend.kernel_launches(), 3);
            assert_eq!(backend.items_processed(), 300);
        }
    }

    #[test]
    fn oversized_launches_fail_without_invoking_the_kernel() {
        for kind in [
            BackendKind::Sim,
            BackendKind::HostParallel { threads: Some(2) },
        ] {
            let mut backend = spec(kind).build();
            let invoked = Mutex::new(false);
            let result = backend.launch(10_001, &|_| *invoked.lock().unwrap() = true);
            assert!(matches!(
                result,
                Err(AccelError::OutOfMemory {
                    requested: 10_001,
                    capacity: 10_000,
                    ..
                })
            ));
            assert!(!*invoked.lock().unwrap());
            assert_eq!(backend.kernel_launches(), 0);
        }
    }

    #[test]
    fn timing_attribution_is_backend_independent() {
        let mut sim = spec(BackendKind::Sim).build();
        let mut par = spec(BackendKind::HostParallel { threads: Some(4) }).build();
        let a = sim.launch(5_000, &|_| {}).unwrap();
        let b = par.launch(5_000, &|_| {}).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn host_parallel_uses_multiple_threads_for_large_launches() {
        let mut backend = HostParallelBackend::new("p", DeviceKind::Cpu, cost(), Some(4));
        assert_eq!(backend.threads(), 4);
        // Each chunk blocks on the barrier until all four are in flight, so
        // the launch cannot complete unless four distinct workers run it.
        let rendezvous = std::sync::Barrier::new(4);
        let thread_ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        backend
            .launch(4 * MIN_ITEMS_PER_CHUNK, &|_| {
                rendezvous.wait();
                thread_ids
                    .lock()
                    .unwrap()
                    .insert(std::thread::current().id());
            })
            .unwrap();
        assert_eq!(thread_ids.lock().unwrap().len(), 4);
        // Tiny launches stay inline: one chunk, the calling thread.
        let chunks = observed_chunks(&mut backend, MIN_ITEMS_PER_CHUNK / 2);
        assert_eq!(chunks.len(), 1);
    }

    #[test]
    fn pool_threads_persist_across_launches() {
        let mut backend = HostParallelBackend::new("p", DeviceKind::Cpu, cost(), Some(4));
        let ids = |backend: &mut HostParallelBackend| {
            // Rendezvous forces every worker to take exactly one chunk, so
            // each launch observes the full, stable set of pool threads.
            let rendezvous = std::sync::Barrier::new(4);
            let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
            backend
                .launch(4 * MIN_ITEMS_PER_CHUNK, &|_| {
                    rendezvous.wait();
                    seen.lock().unwrap().insert(std::thread::current().id());
                })
                .unwrap();
            seen.into_inner().unwrap()
        };
        let first = ids(&mut backend);
        let second = ids(&mut backend);
        assert_eq!(first.len(), 4);
        // Long-lived pool: later launches run on the same worker threads
        // instead of freshly spawned ones, and never on the caller's.
        assert_eq!(second, first);
        assert!(!first.contains(&std::thread::current().id()));
        // Clones own their threads: the pool itself is not duplicated.
        let mut cloned = backend.clone();
        assert_eq!(cloned, backend);
        let third = ids(&mut cloned);
        assert!(third.is_disjoint(&first));
    }

    #[test]
    fn kernel_panics_propagate_from_the_pool() {
        let mut backend = HostParallelBackend::new("p", DeviceKind::Cpu, cost(), Some(4));
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            let _ = backend.launch(4 * MIN_ITEMS_PER_CHUNK, &|chunk| {
                assert!(chunk.index != 1, "kernel died");
            });
        }));
        assert!(unwound.is_err());
        // The pool survives a panicking kernel: the next launch completes.
        backend.launch(4 * MIN_ITEMS_PER_CHUNK, &|_| {}).unwrap();
    }

    #[test]
    fn thread_count_is_clamped_to_the_device_width() {
        let narrow = CostModel { lanes: 2, ..cost() };
        let backend = HostParallelBackend::new("n", DeviceKind::Cpu, narrow, Some(16));
        assert_eq!(backend.threads(), 2);
        let auto = HostParallelBackend::new("a", DeviceKind::Cpu, cost(), None);
        assert!(auto.threads() >= 1);
    }

    #[test]
    fn specs_round_trip_through_live_backends() {
        for kind in [
            BackendKind::Sim,
            BackendKind::HostParallel { threads: Some(3) },
        ] {
            let spec = spec(kind);
            let backend = spec.build();
            assert_eq!(backend.spec(), spec);
            assert_eq!(backend.name(), "test-dev");
            assert_eq!(backend.kind(), DeviceKind::Gpu);
            assert_eq!(backend.capacity_factor(), spec.capacity_factor());
        }
    }

    #[test]
    fn backend_kind_labels_are_stable() {
        assert_eq!(BackendKind::Sim.label(), "sim");
        assert_eq!(BackendKind::host_parallel().to_string(), "host-parallel");
    }

    #[test]
    fn sim_execute_batch_collects_in_input_order() {
        let mut sim = SimBackend::new("s", DeviceKind::Cpu, cost());
        let items: Vec<u64> = (0..1000).collect();
        let run = sim.execute_batch(&items, |&x| x * x).unwrap();
        assert_eq!(run.outputs.len(), 1000);
        assert_eq!(run.outputs[31], 31 * 31);
        assert_eq!(sim.items_processed, 1000);
        let mut out = Vec::new();
        let timing = sim
            .execute_batch_with(&items, |&x| out.push(x + 1))
            .unwrap();
        assert_eq!(out[10], 11);
        assert_eq!(timing.call, sim.cost_model().call);
        let oversized = vec![0u8; 10_001];
        assert!(matches!(
            sim.execute_batch(&oversized, |_| ()),
            Err(AccelError::OutOfMemory { .. })
        ));
    }
}
