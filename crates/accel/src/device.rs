//! Accelerator device abstraction.
//!
//! A [`Device`] is what a GX-Plug *daemon* wraps: "a daemon is a multi-core
//! processor, an abstract representation of an accelerator" (§I).  Devices
//! execute kernels over batches of data entities; timing is attributed through
//! the device's [`CostModel`] so results are host-independent, while the
//! kernel's outputs are computed for real.

use crate::cost::CostModel;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The hardware flavour of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A multi-core / many-core CPU used as an accelerator.
    Cpu,
    /// A discrete GPU.
    Gpu,
    /// An FPGA-style streaming accelerator (provided for completeness; the
    /// paper's Figure 1 lists FPGAs as pluggable daemons).
    Fpga,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::Cpu => write!(f, "CPU"),
            DeviceKind::Gpu => write!(f, "GPU"),
            DeviceKind::Fpga => write!(f, "FPGA"),
        }
    }
}

/// Errors produced by device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccelError {
    /// The batch does not fit in device memory.
    OutOfMemory {
        /// Number of items requested.
        requested: usize,
        /// Device capacity in items.
        capacity: usize,
        /// Device that rejected the batch.
        device: String,
    },
    /// No device of the requested kind is available in the registry.
    NoDeviceAvailable {
        /// Requested kind.
        kind: DeviceKind,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::OutOfMemory {
                requested,
                capacity,
                device,
            } => write!(
                f,
                "out of device memory on {device}: batch of {requested} items exceeds capacity of {capacity}"
            ),
            AccelError::NoDeviceAvailable { kind } => {
                write!(f, "no {kind} device available in the registry")
            }
        }
    }
}

impl std::error::Error for AccelError {}

/// Result alias for accelerator operations.
pub type Result<T> = std::result::Result<T, AccelError>;

/// Timing breakdown of a single kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Device initialisation cost paid by this call (zero if the device was
    /// already initialised — the benefit of runtime isolation, Fig. 13).
    pub init: SimDuration,
    /// Kernel launch / device call overhead (`Tcall`).
    pub call: SimDuration,
    /// Host/device transfer time (`Tcopy`).
    pub copy: SimDuration,
    /// Parallel compute time (`Tcomp`).
    pub compute: SimDuration,
}

impl KernelTiming {
    /// Total simulated time of the call.
    pub fn total(&self) -> SimDuration {
        self.init + self.call + self.copy + self.compute
    }
}

/// The result of executing a kernel over a batch.
#[derive(Debug, Clone)]
pub struct KernelRun<R> {
    /// Per-item kernel outputs, in input order.
    pub outputs: Vec<R>,
    /// Timing attribution for the call.
    pub timing: KernelTiming,
}

/// A simulated accelerator device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    name: String,
    kind: DeviceKind,
    cost: CostModel,
    initialized: bool,
    /// Cumulative number of items processed (for utilisation metrics).
    items_processed: u64,
    /// Cumulative number of kernel launches.
    kernel_launches: u64,
}

impl Device {
    /// Creates a new, uninitialised device.
    pub fn new(name: impl Into<String>, kind: DeviceKind, cost: CostModel) -> Self {
        Self {
            name: name.into(),
            kind,
            cost,
            initialized: false,
            items_processed: 0,
            kernel_launches: 0,
        }
    }

    /// Device name (e.g. `"V100-0"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device kind.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// The device's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Whether the device context has been initialised.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Total items processed so far.
    pub fn items_processed(&self) -> u64 {
        self.items_processed
    }

    /// Total kernel launches so far.
    pub fn kernel_launches(&self) -> u64 {
        self.kernel_launches
    }

    /// Initialises the device context if necessary and returns the time it
    /// took (zero when already initialised).
    ///
    /// A daemon calls this once when it starts and keeps the context alive
    /// across iterations (runtime isolation, §IV-C); a naive integration pays
    /// it on every call.
    pub fn initialize(&mut self) -> SimDuration {
        if self.initialized {
            SimDuration::ZERO
        } else {
            self.initialized = true;
            self.cost.init
        }
    }

    /// Tears down the device context (so the next call pays `init` again).
    pub fn shutdown(&mut self) {
        self.initialized = false;
    }

    /// Estimated time to run a kernel over `n` items, excluding any pending
    /// initialisation.  Used by the pipeline block-size analysis and the
    /// workload balancer.
    pub fn estimate_invocation(&self, n: usize) -> SimDuration {
        self.cost.invocation_time(n)
    }

    /// The computation capacity factor `1/c_j` (§III-C) of this device.
    pub fn capacity_factor(&self) -> f64 {
        self.cost.capacity_factor()
    }

    /// Executes `kernel` over every item in `batch`.
    ///
    /// The outputs are computed for real on the host; the reported
    /// [`KernelTiming`] comes from the cost model (initialisation if needed +
    /// `Tcall + Tcopy + Tcomp`).  Fails with [`AccelError::OutOfMemory`] if
    /// the batch exceeds the device memory capacity.
    pub fn execute_batch<T, R>(
        &mut self,
        batch: &[T],
        mut kernel: impl FnMut(&T) -> R,
    ) -> Result<KernelRun<R>> {
        // Reject oversized batches BEFORE sizing the output buffer: an
        // over-capacity batch must cost an error, not a giant host
        // allocation.
        self.check_memory(batch.len())?;
        let mut outputs: Vec<R> = Vec::with_capacity(batch.len());
        let timing = self.execute_batch_with(batch, |item| outputs.push(kernel(item)))?;
        Ok(KernelRun { outputs, timing })
    }

    /// Fails with [`AccelError::OutOfMemory`] if a batch of `n` items would
    /// exceed the device memory.
    fn check_memory(&self, n: usize) -> Result<()> {
        if self.cost.exceeds_memory(n) {
            return Err(AccelError::OutOfMemory {
                requested: n,
                capacity: self.cost.memory_capacity_items.unwrap_or(0),
                device: self.name.clone(),
            });
        }
        Ok(())
    }

    /// Executes `per_item` over every item in `batch` without collecting
    /// outputs — the sink-style variant of [`Device::execute_batch`] the
    /// zero-copy pipeline uses: the caller's closure writes results straight
    /// into its own reusable buffer, so the device allocates nothing per
    /// launch.
    pub fn execute_batch_with<T>(
        &mut self,
        batch: &[T],
        mut per_item: impl FnMut(&T),
    ) -> Result<KernelTiming> {
        self.check_memory(batch.len())?;
        let init = self.initialize();
        for item in batch {
            per_item(item);
        }
        self.items_processed += batch.len() as u64;
        self.kernel_launches += 1;
        Ok(KernelTiming {
            init,
            call: self.cost.call,
            copy: self.cost.copy_time(batch.len()),
            compute: self.cost.compute_time(batch.len()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn tiny_gpu() -> Device {
        Device::new(
            "test-gpu",
            DeviceKind::Gpu,
            CostModel {
                init: SimDuration::from_millis(50.0),
                call: SimDuration::from_millis(1.0),
                copy_per_item: SimDuration::from_micros(1.0),
                compute_per_item: SimDuration::from_micros(10.0),
                lanes: 100,
                parallel_efficiency: 1.0,
                memory_capacity_items: Some(10_000),
            },
        )
    }

    #[test]
    fn first_call_pays_init_later_calls_do_not() {
        let mut dev = tiny_gpu();
        assert!(!dev.is_initialized());
        let items = vec![1u32; 100];
        let first = dev.execute_batch(&items, |x| x * 2).unwrap();
        assert_eq!(first.timing.init.as_millis(), 50.0);
        assert!(dev.is_initialized());
        let second = dev.execute_batch(&items, |x| x * 2).unwrap();
        assert!(second.timing.init.is_zero());
        assert!(second.timing.total() < first.timing.total());
        dev.shutdown();
        let third = dev.execute_batch(&items, |x| x * 2).unwrap();
        assert_eq!(third.timing.init.as_millis(), 50.0);
    }

    #[test]
    fn kernel_outputs_are_computed_for_real() {
        let mut dev = tiny_gpu();
        let items: Vec<u64> = (0..1000).collect();
        let run = dev.execute_batch(&items, |&x| x * x).unwrap();
        assert_eq!(run.outputs.len(), 1000);
        assert_eq!(run.outputs[31], 31 * 31);
        assert_eq!(dev.items_processed(), 1000);
        assert_eq!(dev.kernel_launches(), 1);
    }

    #[test]
    fn sink_variant_feeds_a_caller_owned_buffer() {
        let mut dev = tiny_gpu();
        let items: Vec<u64> = (0..100).collect();
        let mut out: Vec<u64> = Vec::with_capacity(items.len());
        let timing = dev
            .execute_batch_with(&items, |&x| out.push(x + 1))
            .unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(out[10], 11);
        assert_eq!(timing.call, dev.cost_model().call);
        assert_eq!(dev.items_processed(), 100);
        // The sink variant respects device memory like the collecting one.
        let oversized = vec![0u8; 10_001];
        assert!(matches!(
            dev.execute_batch_with(&oversized, |_| {}),
            Err(AccelError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn oom_when_batch_exceeds_capacity() {
        let mut dev = tiny_gpu();
        let items = vec![0u8; 10_001];
        let err = dev.execute_batch(&items, |_| ()).unwrap_err();
        assert!(matches!(
            err,
            AccelError::OutOfMemory {
                requested: 10_001,
                capacity: 10_000,
                ..
            }
        ));
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn timing_scales_with_batch_size() {
        let mut dev = tiny_gpu();
        dev.initialize();
        let small = dev.execute_batch(&[0u8; 100], |_| ()).unwrap();
        let large = dev.execute_batch(&[0u8; 10_000], |_| ()).unwrap();
        assert!(large.timing.total() > small.timing.total());
        assert_eq!(small.timing.call, large.timing.call);
    }

    #[test]
    fn gpu_preset_is_faster_per_item_but_slower_to_init_than_cpu() {
        let gpu = presets::gpu_v100("g0");
        let cpu = presets::cpu_xeon_20c("c0");
        assert!(gpu.capacity_factor() > cpu.capacity_factor());
        assert!(gpu.cost_model().init > cpu.cost_model().init);
        assert!(gpu.cost_model().copy_per_item > cpu.cost_model().copy_per_item);
    }
}
