//! Shared device vocabulary: kinds, errors, kernel timing.
//!
//! The *execution* side of a device lives behind the
//! [`AcceleratorBackend`](crate::backend::AcceleratorBackend) trait in
//! [`backend`](crate::backend); this module holds the types every backend
//! (and every consumer of one) speaks: the hardware flavour, the error
//! vocabulary and the timing attribution of a kernel launch.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The hardware flavour of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A multi-core / many-core CPU used as an accelerator.
    Cpu,
    /// A discrete GPU.
    Gpu,
    /// An FPGA-style streaming accelerator (provided for completeness; the
    /// paper's Figure 1 lists FPGAs as pluggable daemons).
    Fpga,
}

impl DeviceKind {
    /// Allocation preference rank used by the registry's deterministic
    /// `take_any` ordering: GPUs first (the paper's primary accelerators),
    /// then FPGAs, then CPUs.  Lower rank is preferred.
    pub fn preference_rank(self) -> u8 {
        match self {
            DeviceKind::Gpu => 0,
            DeviceKind::Fpga => 1,
            DeviceKind::Cpu => 2,
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::Cpu => write!(f, "CPU"),
            DeviceKind::Gpu => write!(f, "GPU"),
            DeviceKind::Fpga => write!(f, "FPGA"),
        }
    }
}

/// Errors produced by device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccelError {
    /// The batch does not fit in device memory.
    OutOfMemory {
        /// Number of items requested.
        requested: usize,
        /// Device capacity in items.
        capacity: usize,
        /// Device that rejected the batch.
        device: String,
    },
    /// No device of the requested kind is available in the registry.
    NoDeviceAvailable {
        /// Requested kind.
        kind: DeviceKind,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::OutOfMemory {
                requested,
                capacity,
                device,
            } => write!(
                f,
                "out of device memory on {device}: batch of {requested} items exceeds capacity of {capacity}"
            ),
            AccelError::NoDeviceAvailable { kind } => {
                write!(f, "no {kind} device available in the registry")
            }
        }
    }
}

impl std::error::Error for AccelError {}

/// Result alias for accelerator operations.
pub type Result<T> = std::result::Result<T, AccelError>;

/// Timing breakdown of a single kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Device initialisation cost paid by this call (zero if the device was
    /// already initialised — the benefit of runtime isolation, Fig. 13).
    pub init: SimDuration,
    /// Kernel launch / device call overhead (`Tcall`).
    pub call: SimDuration,
    /// Host/device transfer time (`Tcopy`).
    pub copy: SimDuration,
    /// Parallel compute time (`Tcomp`).
    pub compute: SimDuration,
}

impl KernelTiming {
    /// Total simulated time of the call.
    pub fn total(&self) -> SimDuration {
        self.init + self.call + self.copy + self.compute
    }
}

/// The result of executing a kernel over a batch with collected outputs
/// (see [`SimBackend::execute_batch`](crate::backend::SimBackend::execute_batch)).
#[derive(Debug, Clone)]
pub struct KernelRun<R> {
    /// Per-item kernel outputs, in input order.
    pub outputs: Vec<R>,
    /// Timing attribution for the call.
    pub timing: KernelTiming,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_preference_prefers_gpus() {
        assert!(DeviceKind::Gpu.preference_rank() < DeviceKind::Fpga.preference_rank());
        assert!(DeviceKind::Fpga.preference_rank() < DeviceKind::Cpu.preference_rank());
    }

    #[test]
    fn errors_render_their_context() {
        let oom = AccelError::OutOfMemory {
            requested: 11,
            capacity: 10,
            device: "g0".to_string(),
        };
        assert!(oom.to_string().contains("out of device memory on g0"));
        let missing = AccelError::NoDeviceAvailable {
            kind: DeviceKind::Fpga,
        };
        assert!(missing.to_string().contains("FPGA"));
    }

    #[test]
    fn timing_totals_sum_all_phases() {
        let timing = KernelTiming {
            init: SimDuration::from_millis(1.0),
            call: SimDuration::from_millis(2.0),
            copy: SimDuration::from_millis(3.0),
            compute: SimDuration::from_millis(4.0),
        };
        assert_eq!(timing.total().as_millis(), 10.0);
    }
}
