//! Device registry / pool.
//!
//! The workload-balancing analysis (§III-C, Lemma 3) lets the middleware
//! "dynamically allocate idle accelerators to generate more daemons for the
//! node demanding computation powers".  The [`DeviceRegistry`] is the shared
//! pool those allocations draw from: an upper system (or the Fig. 9d
//! mix-and-match harness) seeds it with the devices of a node or cluster, and
//! agents take / return devices as daemons are created and destroyed.
//!
//! The pool holds *live* boxed [`AcceleratorBackend`]s, so a device context
//! initialised by one daemon survives a take/release round trip and the next
//! daemon skips the initialisation cost.

use crate::backend::{AcceleratorBackend, DeviceSpec};
use crate::device::{AccelError, DeviceKind, Result};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A pool of accelerator devices available for daemon creation.
///
/// The registry is cheap to clone (`Arc` internally) so an agent per
/// distributed node can share one cluster-wide pool.
#[derive(Debug, Clone, Default)]
pub struct DeviceRegistry {
    inner: Arc<Mutex<Vec<Box<dyn AcceleratorBackend>>>>,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the pool, recovering from poisoning (the pool's invariants hold
    /// between operations, so a panicking holder cannot corrupt it).
    fn pool(&self) -> MutexGuard<'_, Vec<Box<dyn AcceleratorBackend>>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates a registry pre-populated by building each of `specs`.
    pub fn with_devices(specs: Vec<DeviceSpec>) -> Self {
        Self {
            inner: Arc::new(Mutex::new(specs.iter().map(DeviceSpec::build).collect())),
        }
    }

    /// Adds a device to the pool.  Accepts a [`DeviceSpec`] (built on
    /// insertion) or an already-live boxed backend.
    pub fn add(&self, device: impl Into<Box<dyn AcceleratorBackend>>) {
        self.pool().push(device.into());
    }

    /// Number of idle devices currently in the pool.
    pub fn available(&self) -> usize {
        self.pool().len()
    }

    /// Number of idle devices of the given kind.
    pub fn available_of(&self, kind: DeviceKind) -> usize {
        self.pool().iter().filter(|d| d.kind() == kind).count()
    }

    /// Takes any idle device out of the pool.
    ///
    /// The preference order is fully deterministic, so mix-and-match
    /// deployments that draw from a shared pool are reproducible:
    ///
    /// 1. device **kind** — GPU before FPGA before CPU
    ///    ([`DeviceKind::preference_rank`]);
    /// 2. **capacity factor**, descending (faster devices first);
    /// 3. **insertion index**, ascending (earliest-added wins ties).
    ///
    /// Released devices re-enter at the back of the pool, i.e. with a new
    /// insertion index.
    pub fn take_any(&self) -> Option<Box<dyn AcceleratorBackend>> {
        let mut devices = self.pool();
        if devices.is_empty() {
            return None;
        }
        let best = devices
            .iter()
            .enumerate()
            .min_by(|(ia, a), (ib, b)| {
                a.kind()
                    .preference_rank()
                    .cmp(&b.kind().preference_rank())
                    .then_with(|| {
                        b.capacity_factor()
                            .partial_cmp(&a.capacity_factor())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .then_with(|| ia.cmp(ib))
            })
            .map(|(i, _)| i)?;
        // `remove`, not `swap_remove`: the pool must keep insertion order so
        // the tie-breaking stays deterministic across takes.
        Some(devices.remove(best))
    }

    /// Takes the most-preferred idle device of the requested kind (same
    /// deterministic ordering as [`DeviceRegistry::take_any`] within the
    /// kind).
    pub fn take(&self, kind: DeviceKind) -> Result<Box<dyn AcceleratorBackend>> {
        let mut devices = self.pool();
        let pos = devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind() == kind)
            .min_by(|(ia, a), (ib, b)| {
                b.capacity_factor()
                    .partial_cmp(&a.capacity_factor())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| ia.cmp(ib))
            })
            .map(|(i, _)| i);
        match pos {
            Some(i) => Ok(devices.remove(i)),
            None => Err(AccelError::NoDeviceAvailable { kind }),
        }
    }

    /// Returns a device to the pool (e.g. when a daemon shuts down).  The
    /// device re-enters at the back: it gets a fresh insertion index.
    pub fn release(&self, device: Box<dyn AcceleratorBackend>) {
        self.pool().push(device);
    }

    /// Sum of capacity factors of all idle devices — the maximum additional
    /// computation capacity the balancer can still hand out.
    pub fn idle_capacity(&self) -> f64 {
        self.pool().iter().map(|d| d.capacity_factor()).sum()
    }

    /// Specs of the idle devices, in pool (insertion) order.
    pub fn specs(&self) -> Vec<DeviceSpec> {
        self.pool().iter().map(|d| d.spec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn pool() -> DeviceRegistry {
        DeviceRegistry::with_devices(vec![
            presets::cpu_xeon_20c("c0"),
            presets::gpu_v100("g0"),
            presets::gpu_v100("g1"),
        ])
    }

    #[test]
    fn take_and_release_round_trip() {
        let registry = pool();
        assert_eq!(registry.available(), 3);
        assert_eq!(registry.available_of(DeviceKind::Gpu), 2);
        let gpu = registry.take(DeviceKind::Gpu).unwrap();
        assert_eq!(registry.available_of(DeviceKind::Gpu), 1);
        registry.release(gpu);
        assert_eq!(registry.available_of(DeviceKind::Gpu), 2);
    }

    #[test]
    fn take_missing_kind_fails() {
        let registry = pool();
        assert!(matches!(
            registry.take(DeviceKind::Fpga),
            Err(AccelError::NoDeviceAvailable {
                kind: DeviceKind::Fpga
            })
        ));
    }

    #[test]
    fn take_any_follows_the_documented_preference_order() {
        // Kind beats capacity: a GPU is taken before the (hypothetically
        // faster) CPU; within the GPUs, insertion order breaks the capacity
        // tie.
        let registry = pool();
        let first = registry.take_any().unwrap();
        assert_eq!((first.kind(), first.name()), (DeviceKind::Gpu, "g0"));
        let second = registry.take_any().unwrap();
        assert_eq!(second.name(), "g1");
        let third = registry.take_any().unwrap();
        assert_eq!(third.kind(), DeviceKind::Cpu);
        assert!(registry.take_any().is_none());
    }

    #[test]
    fn take_any_order_is_reproducible_across_registries() {
        let names = || -> Vec<String> {
            let registry = pool();
            std::iter::from_fn(|| registry.take_any())
                .map(|d| d.name().to_string())
                .collect()
        };
        assert_eq!(names(), names());
        assert_eq!(names(), vec!["g0", "g1", "c0"]);
    }

    #[test]
    fn released_devices_keep_their_context_and_requeue_at_the_back() {
        let registry =
            DeviceRegistry::with_devices(vec![presets::gpu_v100("g0"), presets::gpu_v100("g1")]);
        let mut g0 = registry.take_any().unwrap();
        assert_eq!(g0.name(), "g0");
        g0.initialize();
        registry.release(g0);
        // g1 was inserted before the released g0's new back-of-pool slot.
        let next = registry.take_any().unwrap();
        assert_eq!(next.name(), "g1");
        let warm = registry.take_any().unwrap();
        assert_eq!(warm.name(), "g0");
        // The device context survived the round trip.
        assert!(warm.is_initialized());
    }

    #[test]
    fn idle_capacity_shrinks_as_devices_are_taken() {
        let registry = pool();
        let before = registry.idle_capacity();
        let dev = registry.take(DeviceKind::Gpu).unwrap();
        let after = registry.idle_capacity();
        assert!(after < before);
        registry.release(dev);
        assert!((registry.idle_capacity() - before).abs() < 1e-9);
    }

    #[test]
    fn registry_clones_share_the_same_pool() {
        let registry = pool();
        let clone = registry.clone();
        let _ = clone.take(DeviceKind::Cpu).unwrap();
        assert_eq!(registry.available_of(DeviceKind::Cpu), 0);
    }

    #[test]
    fn specs_reflect_the_pool() {
        let registry = pool();
        let specs = registry.specs();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].name, "c0");
    }
}
