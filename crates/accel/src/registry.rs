//! Device registry / pool.
//!
//! The workload-balancing analysis (§III-C, Lemma 3) lets the middleware
//! "dynamically allocate idle accelerators to generate more daemons for the
//! node demanding computation powers".  The [`DeviceRegistry`] is the shared
//! pool those allocations draw from: an upper system (or the Fig. 9d
//! mix-and-match harness) seeds it with the devices of a node or cluster, and
//! agents take / return devices as daemons are created and destroyed.

use crate::device::{AccelError, Device, DeviceKind, Result};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A pool of accelerator devices available for daemon creation.
///
/// The registry is cheap to clone (`Arc` internally) so an agent per
/// distributed node can share one cluster-wide pool.
#[derive(Debug, Clone, Default)]
pub struct DeviceRegistry {
    inner: Arc<Mutex<Vec<Device>>>,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the pool, recovering from poisoning (the pool's invariants hold
    /// between operations, so a panicking holder cannot corrupt it).
    fn pool(&self) -> MutexGuard<'_, Vec<Device>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates a registry pre-populated with `devices`.
    pub fn with_devices(devices: Vec<Device>) -> Self {
        Self {
            inner: Arc::new(Mutex::new(devices)),
        }
    }

    /// Adds a device to the pool.
    pub fn add(&self, device: Device) {
        self.pool().push(device);
    }

    /// Number of idle devices currently in the pool.
    pub fn available(&self) -> usize {
        self.pool().len()
    }

    /// Number of idle devices of the given kind.
    pub fn available_of(&self, kind: DeviceKind) -> usize {
        self.pool().iter().filter(|d| d.kind() == kind).count()
    }

    /// Takes any idle device out of the pool, preferring GPUs (highest
    /// capacity factor first).
    pub fn take_any(&self) -> Option<Device> {
        let mut devices = self.pool();
        if devices.is_empty() {
            return None;
        }
        let best = devices
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.capacity_factor()
                    .partial_cmp(&b.capacity_factor())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)?;
        Some(devices.swap_remove(best))
    }

    /// Takes an idle device of the requested kind.
    pub fn take(&self, kind: DeviceKind) -> Result<Device> {
        let mut devices = self.pool();
        let pos = devices.iter().position(|d| d.kind() == kind);
        match pos {
            Some(i) => Ok(devices.swap_remove(i)),
            None => Err(AccelError::NoDeviceAvailable { kind }),
        }
    }

    /// Returns a device to the pool (e.g. when a daemon shuts down).
    pub fn release(&self, device: Device) {
        self.pool().push(device);
    }

    /// Sum of capacity factors of all idle devices — the maximum additional
    /// computation capacity the balancer can still hand out.
    pub fn idle_capacity(&self) -> f64 {
        self.pool().iter().map(|d| d.capacity_factor()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn pool() -> DeviceRegistry {
        DeviceRegistry::with_devices(vec![
            presets::gpu_v100("g0"),
            presets::gpu_v100("g1"),
            presets::cpu_xeon_20c("c0"),
        ])
    }

    #[test]
    fn take_and_release_round_trip() {
        let registry = pool();
        assert_eq!(registry.available(), 3);
        assert_eq!(registry.available_of(DeviceKind::Gpu), 2);
        let gpu = registry.take(DeviceKind::Gpu).unwrap();
        assert_eq!(registry.available_of(DeviceKind::Gpu), 1);
        registry.release(gpu);
        assert_eq!(registry.available_of(DeviceKind::Gpu), 2);
    }

    #[test]
    fn take_missing_kind_fails() {
        let registry = pool();
        assert!(matches!(
            registry.take(DeviceKind::Fpga),
            Err(AccelError::NoDeviceAvailable {
                kind: DeviceKind::Fpga
            })
        ));
    }

    #[test]
    fn take_any_prefers_fastest_device() {
        let registry = pool();
        let first = registry.take_any().unwrap();
        assert_eq!(first.kind(), DeviceKind::Gpu);
        let _second = registry.take_any().unwrap();
        let third = registry.take_any().unwrap();
        assert_eq!(third.kind(), DeviceKind::Cpu);
        assert!(registry.take_any().is_none());
    }

    #[test]
    fn idle_capacity_shrinks_as_devices_are_taken() {
        let registry = pool();
        let before = registry.idle_capacity();
        let dev = registry.take(DeviceKind::Gpu).unwrap();
        let after = registry.idle_capacity();
        assert!(after < before);
        registry.release(dev);
        assert!((registry.idle_capacity() - before).abs() < 1e-9);
    }

    #[test]
    fn registry_clones_share_the_same_pool() {
        let registry = pool();
        let clone = registry.clone();
        let _ = clone.take(DeviceKind::Cpu).unwrap();
        assert_eq!(registry.available_of(DeviceKind::Cpu), 0);
    }
}
