//! Simulated time.
//!
//! The paper's evaluation ran on a 6-node V100 cluster; this reproduction runs
//! on whatever machine executes `cargo bench`.  To keep the *shape* of the
//! results (who wins, by what factor, where crossovers fall) independent of
//! the host, every substrate reports costs in **simulated milliseconds**
//! derived from explicit analytic cost models, and the engine accumulates them
//! on a [`SimClock`].  Real computation (shortest-path distances, PageRank
//! values, …) still happens; only wall-clock attribution is modelled.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        debug_assert!(ms.is_finite() && ms >= 0.0, "invalid duration {ms}");
        Self(ms.max(0.0))
    }

    /// Creates a duration from seconds.
    pub fn from_secs(secs: f64) -> Self {
        Self::from_millis(secs * 1e3)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_millis(us / 1e3)
    }

    /// The duration in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0
    }

    /// The duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1e3
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns `true` if this duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: Self) -> Self {
        Self((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, d| acc + d)
    }
}

/// A monotonically advancing simulated clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    now: SimDuration,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time since the clock was created.
    pub fn now(&self) -> SimDuration {
        self.now
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Advances the clock to `t` if `t` is later than the current time
    /// (used when joining parallel timelines at a barrier).
    pub fn advance_to(&mut self, t: SimDuration) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Resets the clock to zero.
    pub fn reset(&mut self) {
        self.now = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let d = SimDuration::from_secs(1.5);
        assert_eq!(d.as_millis(), 1500.0);
        assert_eq!(d.as_secs(), 1.5);
        assert_eq!(SimDuration::from_micros(2500.0).as_millis(), 2.5);
    }

    #[test]
    fn arithmetic_behaves_like_numbers() {
        let a = SimDuration::from_millis(10.0);
        let b = SimDuration::from_millis(4.0);
        assert_eq!((a + b).as_millis(), 14.0);
        assert_eq!((a - b).as_millis(), 6.0);
        // Saturating subtraction.
        assert_eq!((b - a).as_millis(), 0.0);
        assert_eq!((a * 3.0).as_millis(), 30.0);
        assert_eq!((a / 2.0).as_millis(), 5.0);
        let total: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(total.as_millis(), 18.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clock = SimClock::new();
        assert!(clock.now().is_zero());
        clock.advance(SimDuration::from_millis(5.0));
        clock.advance_to(SimDuration::from_millis(3.0)); // no-op, earlier
        assert_eq!(clock.now().as_millis(), 5.0);
        clock.advance_to(SimDuration::from_millis(9.0));
        assert_eq!(clock.now().as_millis(), 9.0);
        clock.reset();
        assert!(clock.now().is_zero());
    }
}
