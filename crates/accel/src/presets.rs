//! Calibrated device presets.
//!
//! The constants below are *relative* calibrations chosen so the simulated
//! cluster reproduces the shape of the paper's results (GPU daemons an order
//! of magnitude faster per item than CPU daemons, GPUs expensive to
//! initialise, PCIe transfers visible, device memory bounded).  They do not
//! claim to be absolute V100/Xeon measurements.
//!
//! Presets return [`DeviceSpec`] descriptors with the default
//! [`BackendKind::Sim`](crate::backend::BackendKind::Sim) backend; select a
//! different backend per spec with [`DeviceSpec::with_backend`] or for a
//! whole deployment with the session builder's `backend(...)`.

use crate::backend::DeviceSpec;
use crate::cost::CostModel;
use crate::device::DeviceKind;
use crate::time::SimDuration;

/// Default device-memory capacity of a GPU preset, in data entities
/// (edge triplets).  Roughly "16 GB worth of triplets" at the reduced scale
/// used by the benchmark harness; single-GPU whole-graph engines (the
/// Gunrock-like baseline) overflow this on the Twitter / UK-2007 analogues.
pub const GPU_MEMORY_ITEMS: usize = 250_000;

/// Cost model of an NVIDIA-V100-class GPU treated as a 1024-thread
/// multithreaded processor (the paper's abstraction, §V-A).
pub fn gpu_v100_cost() -> CostModel {
    CostModel {
        init: SimDuration::from_millis(100.0),
        call: SimDuration::from_millis(0.2),
        copy_per_item: SimDuration::from_micros(0.005),
        compute_per_item: SimDuration::from_millis(0.002),
        lanes: 1024,
        parallel_efficiency: 0.30,
        memory_capacity_items: Some(GPU_MEMORY_ITEMS),
    }
}

/// Cost model of a 20-core Xeon-class CPU used as an accelerator
/// (the paper treats the host CPU as a 20-thread processing model, §V-A).
pub fn cpu_xeon_20c_cost() -> CostModel {
    CostModel {
        init: SimDuration::from_millis(2.0),
        call: SimDuration::from_millis(0.02),
        copy_per_item: SimDuration::from_micros(0.001),
        compute_per_item: SimDuration::from_millis(0.0024),
        lanes: 20,
        parallel_efficiency: 0.30,
        memory_capacity_items: None,
    }
}

/// Cost model of an FPGA-style streaming accelerator (listed in the paper's
/// Figure 1 as a pluggable daemon type; not used in the evaluation but
/// supported for completeness).
pub fn fpga_cost() -> CostModel {
    CostModel {
        init: SimDuration::from_millis(250.0),
        call: SimDuration::from_millis(0.5),
        copy_per_item: SimDuration::from_micros(0.03),
        compute_per_item: SimDuration::from_millis(0.0015),
        lanes: 256,
        parallel_efficiency: 0.5,
        memory_capacity_items: Some(GPU_MEMORY_ITEMS / 2),
    }
}

/// A V100-class GPU device spec.
pub fn gpu_v100(name: impl Into<String>) -> DeviceSpec {
    DeviceSpec::new(name, DeviceKind::Gpu, gpu_v100_cost())
}

/// A 20-core Xeon-class CPU device spec.
pub fn cpu_xeon_20c(name: impl Into<String>) -> DeviceSpec {
    DeviceSpec::new(name, DeviceKind::Cpu, cpu_xeon_20c_cost())
}

/// An FPGA-style device spec.
pub fn fpga(name: impl Into<String>) -> DeviceSpec {
    DeviceSpec::new(name, DeviceKind::Fpga, fpga_cost())
}

/// Builds `gpus` GPU specs and `cpus` CPU specs with sequential names,
/// mirroring one physical node of the paper's testbed (e.g. 2 GPUs + 1 CPU).
pub fn node_devices(node: usize, gpus: usize, cpus: usize) -> Vec<DeviceSpec> {
    let mut devices = Vec::with_capacity(gpus + cpus);
    for g in 0..gpus {
        devices.push(gpu_v100(format!("node{node}-gpu{g}")));
    }
    for c in 0..cpus {
        devices.push(cpu_xeon_20c(format!("node{node}-cpu{c}")));
    }
    devices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_is_roughly_an_order_of_magnitude_faster_per_item_than_cpu() {
        let ratio = gpu_v100_cost().capacity_factor() / cpu_xeon_20c_cost().capacity_factor();
        assert!(
            (5.0..=50.0).contains(&ratio),
            "GPU/CPU capacity ratio {ratio} outside plausible range"
        );
    }

    #[test]
    fn gpu_init_dominates_cpu_init() {
        assert!(gpu_v100_cost().init.as_millis() > 20.0 * cpu_xeon_20c_cost().init.as_millis());
    }

    #[test]
    fn gpu_preset_is_faster_per_item_but_slower_to_init_than_cpu() {
        let gpu = gpu_v100("g0");
        let cpu = cpu_xeon_20c("c0");
        assert!(gpu.capacity_factor() > cpu.capacity_factor());
        assert!(gpu.cost_model().init > cpu.cost_model().init);
        assert!(gpu.cost_model().copy_per_item > cpu.cost_model().copy_per_item);
    }

    #[test]
    fn node_devices_builds_requested_mix() {
        let devices = node_devices(3, 2, 1);
        assert_eq!(devices.len(), 3);
        assert_eq!(
            devices.iter().filter(|d| d.kind == DeviceKind::Gpu).count(),
            2
        );
        assert!(devices[0].name.contains("node3"));
    }

    #[test]
    fn small_batches_favour_cpu_large_batches_favour_gpu() {
        // The call overhead / transfer cost of the GPU means tiny batches are
        // cheaper on the CPU; large batches amortise the launch and win on the
        // GPU.  This crossover is exactly why block-size selection (Lemma 1)
        // matters.
        let gpu = gpu_v100_cost();
        let cpu = cpu_xeon_20c_cost();
        assert!(gpu.invocation_time(10) > cpu.invocation_time(10));
        assert!(gpu.invocation_time(100_000) < cpu.invocation_time(100_000));
    }
}
