//! # gxplug-accel
//!
//! Accelerator substrate for the GX-Plug reproduction.
//!
//! The paper plugs real GPUs and multi-core CPUs into distributed graph
//! systems.  This crate provides the stand-in: [`Device`]s that execute
//! kernels for real on the host while attributing time through an analytic
//! [`CostModel`] (`Tcall + Tcomp + Tcopy`, device initialisation, parallel
//! width, memory capacity), so every experiment's *shape* is reproducible on
//! any machine.
//!
//! * [`time`] — simulated durations and clocks shared by all substrates;
//! * [`cost`] — the per-device cost model;
//! * [`device`] — devices, kernel execution and timing attribution;
//! * [`presets`] — calibrated V100-class GPU / Xeon-class CPU / FPGA presets;
//! * [`registry`] — the shared device pool used for daemon allocation and
//!   mix-and-match configurations.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod device;
pub mod presets;
pub mod registry;
pub mod time;

pub use cost::CostModel;
pub use device::{AccelError, Device, DeviceKind, KernelRun, KernelTiming, Result};
pub use registry::DeviceRegistry;
pub use time::{SimClock, SimDuration};
