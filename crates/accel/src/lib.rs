//! # gxplug-accel
//!
//! Accelerator substrate for the GX-Plug reproduction.
//!
//! The paper plugs real GPUs and multi-core CPUs into distributed graph
//! systems.  This crate provides the pluggable stand-in: the
//! [`AcceleratorBackend`] trait is the kernel ABI a daemon drives, and
//! interchangeable backends implement it — the cost-model [`SimBackend`]
//! (kernels run for real on the host, time is attributed analytically so
//! every experiment's *shape* is reproducible on any machine) and the
//! [`HostParallelBackend`] (kernels execute across OS threads, improving
//! real wall-clock time behind the same ABI).
//!
//! * [`time`] — simulated durations and clocks shared by all substrates;
//! * [`cost`] — the per-device cost model;
//! * [`device`] — shared device vocabulary (kinds, errors, kernel timing);
//! * [`backend`] — the [`AcceleratorBackend`] trait, [`DeviceSpec`]
//!   descriptors and the shipped backends;
//! * [`presets`] — calibrated V100-class GPU / Xeon-class CPU / FPGA presets;
//! * [`registry`] — the shared device pool used for daemon allocation and
//!   mix-and-match configurations.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod cost;
pub mod device;
pub mod presets;
pub mod registry;
pub mod time;

pub use backend::{
    AcceleratorBackend, BackendKind, ChunkKernel, ChunkSpec, DeviceSpec, HostParallelBackend,
    SimBackend,
};
pub use cost::CostModel;
pub use device::{AccelError, DeviceKind, KernelRun, KernelTiming, Result};
pub use registry::DeviceRegistry;
pub use time::{SimClock, SimDuration};
