//! Offline minimal stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! integer/float range strategies, 2- and 3-tuples, [`prop::collection::vec`]
//! with either an exact size or a size range, [`any`], and the
//! `prop_assert*` macros (which forward to the std `assert*` macros).
//!
//! Every case is generated from a seed derived deterministically from the
//! test's module path, name and case index, so a failing case reproduces on
//! re-run.  There is no shrinking: the failing inputs are reported by the
//! panic message of the assertion that fired.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::marker::PhantomData;
use std::ops::Range;

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many generated inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property against `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategy drawing arbitrary values of `T` (the shim supports the types the
/// `rand` shim can draw: `bool`, `u32`, `u64`, `f32`, `f64`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::draw(rng)
    }
}

/// Returns a strategy producing arbitrary values of `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

/// Collection sizes: either exact or drawn from a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        Self {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

/// Combinator strategies, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng as _;

        /// Strategy producing `Vec`s of values from an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let len = if self.size.min + 1 >= self.size.max_exclusive {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..self.size.max_exclusive)
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Produces vectors whose elements come from `element` and whose
        /// length comes from `size` (an exact `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Derives the deterministic generator for one test case.
pub fn case_rng(test_path: &str, case: u32) -> StdRng {
    // FNV-1a over the fully qualified test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ ((case as u64) << 32 | case as u64))
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property (forwards to [`assert!`]).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (forwards to [`assert_eq!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test that checks `body` against generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_tests!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated values respect their strategy's bounds.
        #[test]
        fn ranges_and_collections_respect_bounds(
            x in 10u32..20,
            f in 0.5f64..1.5,
            pairs in prop::collection::vec((0u32..5, any::<bool>()), 1..10),
            exact in prop::collection::vec(0.0f64..1.0, 4),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
            prop_assert!(!pairs.is_empty() && pairs.len() < 10);
            for (v, _flag) in &pairs {
                prop_assert!(*v < 5);
            }
            prop_assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        let a = super::case_rng("mod::test", 3).next_u64();
        let b = super::case_rng("mod::test", 3).next_u64();
        let c = super::case_rng("mod::test", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
