//! No-op stand-ins for the `serde_derive` proc macros.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata on
//! plain-old-data types; nothing serializes at runtime yet.  These derives
//! accept the same attribute grammar (`#[serde(...)]`) and expand to nothing,
//! so the annotated types compile unchanged on machines without access to
//! crates.io.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
