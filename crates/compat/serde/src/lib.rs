//! Offline stand-in for the `serde` facade crate.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive macros so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` compile
//! without the real serde.  See `crates/compat/README.md` for the swap-back
//! story.

pub use serde_derive::{Deserialize, Serialize};
