//! Offline deterministic stand-in for the parts of `rand` 0.8 this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`] methods over integer
//! and float ranges.
//!
//! The generator is SplitMix64: tiny, fast, and perfectly adequate for the
//! synthetic graph generators and benches that consume it.  Streams are
//! stable across runs and platforms but differ from upstream `rand`'s; every
//! consumer in this repository seeds explicitly and only relies on
//! within-repository determinism.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic seeding, the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a full-width generator output
/// (the shim's analogue of sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        // 53 random mantissa bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from (`rng.gen_range(lo..hi)` and
/// `rng.gen_range(lo..=hi)`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let unit = <$t as Standard>::draw(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` (the shim supports `f64`, `f32`, `u64`,
    /// `u32` and `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: AsStdRng,
    {
        T::draw(self.as_std_rng())
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsStdRng,
    {
        range.sample_from(self.as_std_rng())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: AsStdRng,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self.as_std_rng()) < p
    }
}

/// Internal plumbing that lets the blanket [`Rng`] methods reach the concrete
/// generator state (the shim has exactly one generator type).
pub trait AsStdRng {
    /// The underlying [`rngs::StdRng`].
    fn as_std_rng(&mut self) -> &mut rngs::StdRng;
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{AsStdRng, Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Advances the SplitMix64 state and returns the next output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl AsStdRng for StdRng {
        fn as_std_rng(&mut self) -> &mut StdRng {
            self
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            StdRng::next_u64(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let i = rng.gen_range(3u32..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&j));
            let f = rng.gen_range(1.0f64..=4.0);
            assert!((1.0..=4.0).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
