//! Offline minimal stand-in for the `criterion` bench harness.
//!
//! Supports the subset this workspace's benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`Bencher::iter_custom`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is a short calibrated loop printing mean wall-clock
//! nanoseconds per iteration — enough to compare variants on one machine.
//! When the binary is invoked with `--test` (which is what `cargo test`
//! passes to `harness = false` bench targets) every benchmark body runs
//! exactly once so the test suite stays fast.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched code.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one benchmark within a group: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id such as `"three_thread_pipeline/64"`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.last_ns_per_iter = 0.0;
            return;
        }
        // Warm-up + calibration: find an iteration count that runs for at
        // least ~20 ms, capped so pathological benches still terminate.
        let mut n: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(20) || n >= 1 << 20 {
                break;
            }
            n = n.saturating_mul(4);
        }
        // Measurement pass at the calibrated count.
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        let measured = start.elapsed();
        self.last_ns_per_iter = measured.as_nanos() as f64 / n as f64;
    }

    /// Runs `f` with full control over the clock: `f` receives an iteration
    /// count and returns the wall time of exactly those iterations, so
    /// per-iteration setup (building inputs, applying a mutation batch) can
    /// stay outside the measurement.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f(1));
            self.last_ns_per_iter = 0.0;
            return;
        }
        // Same calibration shape as `iter`, with the closure keeping time.
        let mut n: u64 = 1;
        let mut elapsed;
        loop {
            elapsed = f(n);
            if elapsed >= Duration::from_millis(20) || n >= 1 << 20 {
                break;
            }
            n = n.saturating_mul(4);
        }
        let measured = f(n);
        self.last_ns_per_iter = measured.as_nanos() as f64 / n as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, test_mode: bool, mut f: F) {
    let mut bencher = Bencher {
        test_mode,
        last_ns_per_iter: 0.0,
    };
    f(&mut bencher);
    if test_mode {
        println!("bench {name:<56} ... ok (ran once, --test mode)");
    } else {
        println!(
            "bench {name:<56} {:>14.1} ns/iter",
            bencher.last_ns_per_iter
        );
    }
}

/// The bench harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes harness = false bench targets with `--test`;
        // `cargo bench` passes `--bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.test_mode, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's calibration ignores it.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's calibration ignores it.
    pub fn measurement_time(&mut self, _duration: std::time::Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.test_mode, |b| f(b, input));
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.test_mode, f);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` invoking the listed [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
