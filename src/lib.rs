//! # gx-plug
//!
//! A Rust reproduction of **"GX-Plug: a Middleware for Plugging Accelerators
//! to Distributed Graph Processing"** (ICDE 2022).
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`graph`] — graph storage, generators, partitioners, dataset catalogue;
//! * [`accel`] — the pluggable accelerator substrate: the
//!   `AcceleratorBackend` kernel ABI with interchangeable sim /
//!   host-parallel backends behind `DeviceSpec` descriptors;
//! * [`ipc`] — shared-memory segments, blocks and the agent/daemon protocol;
//! * [`engine`] — the simulated distributed upper systems (GraphX-like BSP,
//!   PowerGraph-like GAS) and the cluster iteration driver;
//! * [`core`] — the GX-Plug middleware itself (daemon–agent framework,
//!   pipeline shuffle, synchronization caching/skipping, workload
//!   balancing), the `Session` API and the `GraphService` concurrent job
//!   service;
//! * [`algos`] — SSSP-BF, PageRank, LP, CC and k-core on the algorithm
//!   template;
//! * [`baselines`] — the Gunrock-like and Lux-like comparator engines.
//!
//! # Quickstart
//!
//! Deploy once with [`SessionBuilder`](prelude::SessionBuilder), then submit
//! as many runs as you like — the deployed graph, partitioning and daemon
//! device contexts are reused, so only the first run pays the setup cost:
//!
//! ```
//! use gx_plug::prelude::*;
//!
//! // A small power-law graph, partitioned over two simulated nodes.
//! let dataset = gx_plug::graph::datasets::find("Orkut").unwrap();
//! let graph = dataset.build_graph(Scale::Tiny, 7, Vec::new()).unwrap();
//! let partitioning = GreedyVertexCutPartitioner::default()
//!     .partition(&graph, 2)
//!     .unwrap();
//!
//! // Deploy: plug one GPU daemon into each node.
//! let mut session = SessionBuilder::new(&graph)
//!     .partitioned_by(partitioning)
//!     .profile(RuntimeProfile::powergraph())
//!     .network(NetworkModel::datacenter())
//!     .devices(vec![vec![gpu_v100("node0-gpu0")], vec![gpu_v100("node1-gpu0")]])
//!     .dataset("Orkut")
//!     .max_iterations(100)
//!     .build()
//!     .expect("a valid deployment");
//!
//! // Submit runs: the paper's multi-source SSSP, then a parameter sweep.
//! let outcome = session.run(&MultiSourceSssp::paper_default()).unwrap();
//! assert!(outcome.report.converged);
//!
//! let sweep = session.run(&MultiSourceSssp::new(vec![1, 2])).unwrap();
//! assert!(sweep.report.converged);
//! // The deployment was already paid by the first run.
//! assert!(sweep.report.setup.is_zero());
//!
//! // The same deployed cluster also serves the native baseline.
//! let native = session.run_native(&MultiSourceSssp::paper_default());
//! assert_eq!(native.values, outcome.values);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use gxplug_accel as accel;
pub use gxplug_algos as algos;
pub use gxplug_baselines as baselines;
pub use gxplug_core as core;
pub use gxplug_engine as engine;
pub use gxplug_graph as graph;
pub use gxplug_ipc as ipc;
pub use gxplug_server as server;

/// Convenience re-exports covering the most common entry points.
pub mod prelude {
    pub use gxplug_accel::presets::{cpu_xeon_20c, fpga, gpu_v100, node_devices};
    pub use gxplug_accel::{
        AcceleratorBackend, BackendKind, DeviceKind, DeviceRegistry, DeviceSpec,
        HostParallelBackend, SimBackend, SimClock, SimDuration,
    };
    pub use gxplug_algos::{
        ConnectedComponents, KCore, LabelPropagation, MultiSourceSssp, PageRank, RankValue,
    };
    pub use gxplug_baselines::{GunrockLike, LuxLike};
    pub use gxplug_core::{
        balance_capacities, balance_partitioning, split_by_capacity, AdmissionPolicy, Agent,
        CachePolicy, Daemon, ExecutionMode, GraphService, JobOptions, JobPriority, JobStatus,
        JobTicket, MiddlewareConfig, PipelineCoefficients, PipelineMode, RunOutcome, RunOverrides,
        RuntimeError, ServiceBuilder, ServiceError, ServiceStats, Session, SessionBuilder,
        SessionError, SessionSpec,
    };
    pub use gxplug_engine::{
        AddressedMessage, Cluster, ComputationModel, DynAlgorithm, GraphAlgorithm, NetworkModel,
        RunReport, RuntimeProfile, SharedAlgorithm, SyncPolicy,
    };
    pub use gxplug_graph::datasets::{DatasetSpec, Scale, CATALOGUE};
    pub use gxplug_graph::generators::{ErdosRenyi, Generator, GridRoad, Rmat};
    pub use gxplug_graph::partition::{
        GreedyVertexCutPartitioner, HashEdgePartitioner, Partitioner, Partitioning,
        RangePartitioner, WeightedEdgePartitioner,
    };
    pub use gxplug_graph::{
        Edge, EdgeList, MutationBatch, MutationError, MutationLog, MutationOp, MutationScope,
        PropertyGraph, ResolvedMutation, Triplet, TripletBuffer, VertexId, ViewStats,
    };
    pub use gxplug_ipc::wire::{
        Frame, JobSpec, JobState, ServerError, WireJobOptions, WireMutationOp,
    };
    pub use gxplug_ipc::{SegmentPool, SharedSegment, TripletBlockRef};
    pub use gxplug_server::{
        standard_registry, standard_service, AlgorithmRegistry, ServeRank, ServeReach, ServeVertex,
        Server, ServerConfig, Tenant, TenantQuota, TenantRegistry,
    };
}
