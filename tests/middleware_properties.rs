//! Property-based tests (proptest) over the core data structures and the
//! analytical results of the paper: Lemma 1 (block sizing), Lemmas 2 and 3
//! (workload balancing), partitioning invariants, the cache, and the pipeline
//! mechanism.

use gx_plug::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- Lemma 1: block-size selection ----------------

    /// The closed-form optimum of Lemma 1 is never worse (beyond integer
    /// rounding slack) than any block size in a log-spaced sweep.
    #[test]
    fn lemma1_optimum_beats_sweep(
        k1 in 0.001f64..1.0,
        k2 in 0.001f64..1.0,
        k3 in 0.001f64..1.0,
        a in 0.0f64..50.0,
        d in 100usize..200_000,
    ) {
        let coefficients = PipelineCoefficients::new(k1, k2, k3, a);
        let best = coefficients.optimal_block_size(d);
        prop_assert!(best.block_size >= 1 && best.block_size <= d);
        let mut b = 1usize;
        while b <= d {
            let swept = coefficients.estimate_total(d, b);
            prop_assert!(
                best.estimated_total <= swept * 1.02 + 1e-9,
                "b={} swept {} beats optimum {}", b, swept, best.estimated_total
            );
            b *= 2;
        }
    }

    /// The Equation-2 estimate stays close to the exact discrete schedule.
    #[test]
    fn estimate_tracks_discrete_schedule(
        k1 in 0.001f64..1.0,
        k2 in 0.001f64..1.0,
        k3 in 0.001f64..1.0,
        a in 0.0f64..10.0,
        d in 100usize..50_000,
        b in 1usize..5_000,
    ) {
        let coefficients = PipelineCoefficients::new(k1, k2, k3, a);
        let estimate = coefficients.estimate_total(d, b);
        let executed = coefficients.simulate_schedule(d, b);
        prop_assert!(estimate >= 0.0 && executed >= 0.0);
        // The estimate assumes `s` full blocks; the executed schedule handles
        // the ragged tail, so they may differ by at most one block's worth of
        // work plus modelling slack.
        let block = b.min(d) as f64;
        let slack = k1 * block + (a + k2 * block) + k3 * block + 1e-9;
        prop_assert!((estimate - executed).abs() <= slack + 0.15 * executed,
            "estimate {} vs executed {}", estimate, executed);
    }

    // ---------------- Lemmas 2 and 3: workload balancing ----------------

    /// The Lemma-2 placement achieves the analytical optimum `D / Σ(1/c_j)`
    /// and no random alternative placement does better.
    #[test]
    fn lemma2_placement_is_optimal(
        capacities in prop::collection::vec(0.1f64..100.0, 1..8),
        total in 1_000usize..1_000_000,
        noise in prop::collection::vec(0.01f64..1.0, 8),
    ) {
        let plan = balance_partitioning(&capacities, total).unwrap();
        let optimal = gx_plug::core::estimate_makespan(&plan.data_sizes, &capacities).unwrap();
        prop_assert!((optimal.as_millis() - plan.optimal_makespan.as_millis()).abs() < 1e-6);
        // A random (normalised) alternative placement is never faster.
        let weights: Vec<f64> = capacities.iter().zip(&noise).map(|(_, n)| *n).collect();
        let sum: f64 = weights.iter().sum();
        let alternative: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
        let alt = gx_plug::core::estimate_makespan(&alternative, &capacities).unwrap();
        prop_assert!(alt.as_millis() + 1e-9 >= optimal.as_millis());
    }

    /// Lemma 3's capacity prescription is (a) sufficient to reach the optimal
    /// makespan `d* / f` and (b) minimal: reducing any node's capacity makes
    /// that node slower than the optimum.
    #[test]
    fn lemma3_capacities_are_sufficient_and_minimal(
        data in prop::collection::vec(1usize..100_000, 1..8),
        f in 0.5f64..500.0,
    ) {
        let plan = balance_capacities(&data, f).unwrap();
        let sizes: Vec<f64> = data.iter().map(|&d| d as f64).collect();
        let achieved = gx_plug::core::estimate_makespan(&sizes, &plan.capacity_factors).unwrap();
        prop_assert!((achieved.as_millis() - plan.optimal_makespan.as_millis()).abs() < 1e-6);
        for (j, &d_j) in data.iter().enumerate() {
            if d_j == 0 { continue; }
            let reduced = plan.capacity_factors[j] * 0.9;
            let slower = d_j as f64 / reduced;
            prop_assert!(slower > plan.optimal_makespan.as_millis() - 1e-9);
        }
    }

    // ---------------- Partitioning invariants ----------------

    /// Every partitioner assigns each edge exactly once, gives every vertex
    /// exactly one master, and replicates each edge's endpoints onto the
    /// edge's part.
    #[test]
    fn partitioning_invariants_hold(
        seed in 0u64..1_000,
        parts in 1usize..9,
        scale in 6u32..9,
    ) {
        let list = Rmat::new(scale, 4.0).generate(seed);
        let graph: PropertyGraph<u32, f64> = PropertyGraph::from_edge_list(list, 0).unwrap();
        let partitionings: Vec<(&str, Partitioning)> = vec![
            ("hash", HashEdgePartitioner::new(seed).partition(&graph, parts).unwrap()),
            ("range", RangePartitioner.partition(&graph, parts).unwrap()),
            (
                "greedy",
                GreedyVertexCutPartitioner::default().partition(&graph, parts).unwrap(),
            ),
            (
                "weighted",
                WeightedEdgePartitioner::uniform(parts)
                    .unwrap()
                    .partition(&graph, parts)
                    .unwrap(),
            ),
        ];
        for (name, partitioning) in partitionings {
            let total_edges: usize = partitioning.edge_counts().iter().sum();
            prop_assert_eq!(total_edges, graph.num_edges(), "{}", name);
            let total_masters: usize = partitioning.parts().iter().map(|p| p.masters.len()).sum();
            prop_assert_eq!(total_masters, graph.num_vertices(), "{}", name);
            for (edge_id, edge) in graph.edges().iter().enumerate() {
                let part = partitioning.part_of_edge(edge_id);
                prop_assert!(partitioning.part(part).vertices.contains(&edge.src));
                prop_assert!(partitioning.part(part).vertices.contains(&edge.dst));
            }
            prop_assert!(partitioning.replication_factor() >= 1.0 - 1e-12);
            prop_assert!(partitioning.replication_factor() <= parts as f64 + 1e-12);
        }
    }

    /// The capacity-weighted partitioner hits its target fractions within one
    /// edge per part.
    #[test]
    fn weighted_partitioner_matches_targets(
        weights in prop::collection::vec(0.5f64..8.0, 2..6),
        seed in 0u64..100,
    ) {
        let list = ErdosRenyi::new(400, 4_000).generate(seed);
        let graph: PropertyGraph<u32, f64> = PropertyGraph::from_edge_list(list, 0).unwrap();
        let partitioner = WeightedEdgePartitioner::new(weights.clone()).unwrap();
        let partitioning = partitioner.partition(&graph, weights.len()).unwrap();
        let total: f64 = weights.iter().sum();
        for (count, weight) in partitioning.edge_counts().iter().zip(&weights) {
            let target = weight / total * graph.num_edges() as f64;
            prop_assert!((*count as f64 - target).abs() <= 1.0 + 1e-9,
                "count {} vs target {}", count, target);
        }
    }

    // ---------------- Cache and pipeline mechanics ----------------

    /// The LRU cache never exceeds its capacity, never loses a dirty entry
    /// silently, and reports every deferred update either through a forced
    /// eviction upload, a query answer, or the final flush.
    #[test]
    fn cache_never_loses_dirty_updates(
        capacity in 1usize..64,
        operations in prop::collection::vec((0u32..200, any::<bool>()), 1..300),
    ) {
        let mut cache: gx_plug::core::VertexCache<u64> = gx_plug::core::VertexCache::new(capacity);
        let mut expected: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut surfaced: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for (step, (vertex, is_update)) in operations.iter().enumerate() {
            let now = step as u64;
            if *is_update {
                let value = step as u64;
                expected.insert(*vertex, value);
                for (v, val) in cache.record_update(*vertex, value, now) {
                    surfaced.insert(v, val);
                }
            } else {
                let _ = cache.lookup(*vertex, now);
            }
            prop_assert!(cache.len() <= capacity);
        }
        for (v, val) in cache.flush_dirty() {
            surfaced.insert(v, val);
        }
        // Every vertex whose latest update was not overwritten by a newer one
        // must have surfaced with its latest value.
        for (vertex, value) in expected {
            prop_assert_eq!(surfaced.get(&vertex).copied(), Some(value),
                "vertex {} lost its update", vertex);
        }
    }

    /// The threaded pipeline outputs exactly the transformed input, in order.
    #[test]
    fn pipeline_preserves_items(
        block_sizes in prop::collection::vec(1usize..50, 0..20),
    ) {
        let mut counter = 0u64;
        let blocks: Vec<Vec<u64>> = block_sizes
            .iter()
            .map(|&len| {
                let block: Vec<u64> = (counter..counter + len as u64).collect();
                counter += len as u64;
                block
            })
            .collect();
        let mut output = Vec::new();
        gx_plug::core::pipeline::shuffle::run_pipeline(
            blocks,
            |&x| x * 2 + 1,
            |block: Vec<u64>| output.extend(block),
        );
        let expected: Vec<u64> = (0..counter).map(|x| x * 2 + 1).collect();
        prop_assert_eq!(output, expected);
    }

    /// The literal Algorithms-1-and-2 protocol computes every block exactly
    /// once regardless of block count and size.
    #[test]
    fn shuffle_protocol_computes_all_items(
        block_sizes in prop::collection::vec(1usize..40, 0..12),
    ) {
        let blocks: Vec<Vec<u32>> = block_sizes
            .iter()
            .enumerate()
            .map(|(i, &len)| (0..len as u32).map(|x| x + (i as u32) * 1_000).collect())
            .collect();
        let expected: HashSet<u32> = blocks.iter().flatten().map(|&x| x + 5).collect();
        let (output, _stats) =
            gx_plug::core::pipeline::shuffle::run_shuffle_protocol(blocks, |&x| x + 5);
        let got: HashSet<u32> = output.into_iter().flatten().collect();
        prop_assert_eq!(got, expected);
    }

    // ---------------- Graph construction ----------------

    /// CSR degrees always sum to the edge count and triplets join the right
    /// attributes.
    #[test]
    fn graph_construction_invariants(seed in 0u64..500, n in 2usize..200, m in 1usize..800) {
        let list = ErdosRenyi::new(n, m).generate(seed);
        let graph: PropertyGraph<u32, f64> =
            PropertyGraph::from_edge_list_with(list, |v| v * 3).unwrap();
        let out_sum: usize = graph.vertex_ids().map(|v| graph.out_degree(v)).sum();
        let in_sum: usize = graph.vertex_ids().map(|v| graph.in_degree(v)).sum();
        prop_assert_eq!(out_sum, graph.num_edges());
        prop_assert_eq!(in_sum, graph.num_edges());
        for (id, edge) in graph.edges().iter().enumerate().take(50) {
            let triplet = graph.triplet(id);
            prop_assert_eq!(triplet.src, edge.src);
            prop_assert_eq!(triplet.dst, edge.dst);
            prop_assert_eq!(triplet.src_attr, edge.src * 3);
            prop_assert_eq!(triplet.dst_attr, edge.dst * 3);
        }
    }
}

// ---------------- The job service: accounting invariants ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever mix of job counts, priorities, worker-pool sizes and
    /// mid-stream cancellations the service sees, its books balance: every
    /// ticket resolves after a draining shutdown, and the counters add up —
    /// `submitted == completed + cancelled` (no job is lost, duplicated or
    /// left queued).
    #[test]
    fn service_accounting_balances(
        num_jobs in 1usize..10,
        workers in 1usize..4,
        seed in 0u64..1_000,
        cancel_mask in 0u32..256,
    ) {
        use std::sync::Arc;

        let list = Rmat::new(6, 4.0).generate(seed);
        let graph: Arc<PropertyGraph<Vec<f64>, f64>> =
            Arc::new(PropertyGraph::from_edge_list(list, Vec::new()).unwrap());
        let partitioning = GreedyVertexCutPartitioner::default()
            .partition(&graph, 2)
            .unwrap();
        // Native-only service: the scheduler machinery is identical, without
        // paying device deployments 12 times over.
        let service = GraphService::builder(Arc::clone(&graph))
            .partitioned_by(partitioning)
            .max_iterations(50)
            .worker_sessions(workers)
            .build()
            .unwrap();
        let priorities = [JobPriority::High, JobPriority::Normal, JobPriority::Low];
        let tickets: Vec<(bool, JobTicket<Vec<f64>>)> = (0..num_jobs)
            .map(|i| {
                let options = JobOptions::new().with_priority(priorities[i % 3]);
                let ticket = service
                    .submit_with(MultiSourceSssp::new(vec![i as u32]), options)
                    .unwrap();
                let try_cancel = cancel_mask & (1 << (i % 8)) != 0;
                (try_cancel && ticket.cancel(), ticket)
            })
            .collect();
        service.shutdown();

        let mut completed = 0u64;
        let mut cancelled = 0u64;
        for (cancel_won, ticket) in tickets {
            match ticket.wait() {
                Ok(outcome) => {
                    prop_assert!(!cancel_won);
                    prop_assert!(outcome.report.converged);
                    completed += 1;
                }
                Err(ServiceError::Cancelled) => {
                    prop_assert!(cancel_won);
                    cancelled += 1;
                }
                Err(other) => prop_assert!(false, "unexpected ticket outcome: {}", other),
            }
        }
        let stats = service.stats();
        prop_assert_eq!(stats.submitted, (completed + cancelled));
        prop_assert_eq!(stats.completed, completed);
        prop_assert_eq!(stats.cancelled, cancelled);
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(stats.panicked, 0);
        prop_assert_eq!(stats.queued, 0);
        prop_assert_eq!(stats.running, 0);
        prop_assert_eq!(stats.executed(), completed);
    }

    /// Random interleavings of keyed submissions (with every cache policy),
    /// invalidations and full clears: no matter how the cache is filled,
    /// hit, evicted, invalidated or raced by in-flight runs, every ticket
    /// resolves to the bit-exact answer for its key, and every submission is
    /// accounted as exactly one hit or one queued job.
    #[test]
    fn cache_stays_exact_under_submit_invalidate_interleavings(
        seed in 0u64..1_000,
        workers in 1usize..3,
        operations in prop::collection::vec((0u32..3, 0u8..8), 1..25),
    ) {
        use std::sync::Arc;

        let list = Rmat::new(6, 4.0).generate(seed);
        let graph: Arc<PropertyGraph<Vec<f64>, f64>> =
            Arc::new(PropertyGraph::from_edge_list(list, Vec::new()).unwrap());
        let partitioning = GreedyVertexCutPartitioner::default()
            .partition(&graph, 2)
            .unwrap();
        let build = || {
            GraphService::builder(Arc::clone(&graph))
                .partitioned_by(partitioning.clone())
                .max_iterations(50)
                .worker_sessions(workers)
                .cache_capacity(2) // small enough that eviction happens too
                .build()
                .unwrap()
        };
        // The bit-exact reference answer for each of the three keys.
        let reference_service = build();
        let reference: Vec<Vec<Vec<u64>>> = (0..3u32)
            .map(|key| {
                let outcome = reference_service
                    .submit(MultiSourceSssp::new(vec![key]))
                    .unwrap()
                    .wait()
                    .unwrap();
                outcome
                    .values
                    .iter()
                    .map(|d| d.iter().map(|x| x.to_bits()).collect())
                    .collect()
            })
            .collect();

        let service = build();
        let mut submissions = 0u64;
        let tickets: Vec<(u32, JobTicket<Vec<f64>>)> = operations
            .iter()
            .filter_map(|&(key, op)| {
                let policy = match op {
                    0..=3 => CachePolicy::UseOrFill,
                    4 => CachePolicy::Bypass,
                    5 => CachePolicy::Refresh,
                    6 => {
                        service.invalidate_cache();
                        return None;
                    }
                    _ => {
                        service.clear_cache();
                        return None;
                    }
                };
                submissions += 1;
                let ticket = service
                    .submit_with(
                        MultiSourceSssp::new(vec![key]),
                        JobOptions::new().with_cache(policy),
                    )
                    .unwrap();
                Some((key, ticket))
            })
            .collect();
        service.shutdown();

        for (key, ticket) in tickets {
            let outcome = ticket.wait().unwrap();
            for (v, (got, want)) in outcome.values.iter().zip(&reference[key as usize]).enumerate() {
                let bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(&bits, want, "key {} vertex {} diverged", key, v);
            }
        }
        let stats = service.stats();
        prop_assert_eq!(stats.cache_hits + stats.submitted, submissions);
        prop_assert_eq!(stats.completed, stats.submitted);
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(stats.queued, 0);
        prop_assert!(service.cached_results() <= 2);
    }
}
