//! Cross-crate integration tests: the full middleware stack (graph →
//! partitioning → session → agents → daemons → devices) must produce exactly
//! the same algorithm results as native execution and as the sequential
//! references, under every middleware configuration.

use gx_plug::prelude::*;

fn orkut_like(seed: u64) -> EdgeList<f64> {
    Rmat::new(10, 7.0).generate(seed)
}

fn gpus(nodes: usize) -> Vec<Vec<DeviceSpec>> {
    (0..nodes)
        .map(|n| vec![gpu_v100(format!("n{n}-g0"))])
        .collect()
}

fn cpus(nodes: usize) -> Vec<Vec<DeviceSpec>> {
    (0..nodes)
        .map(|n| vec![cpu_xeon_20c(format!("n{n}-c0"))])
        .collect()
}

#[test]
fn sssp_is_identical_across_native_cpu_gpu_and_baselines() {
    let graph: PropertyGraph<Vec<f64>, f64> =
        PropertyGraph::from_edge_list(orkut_like(5), Vec::new()).unwrap();
    let algorithm = MultiSourceSssp::paper_default();
    let nodes = 3;
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, nodes)
        .unwrap();
    let reference =
        gx_plug::algos::reference::multi_source_sssp_reference(&graph, algorithm.sources());

    let check = |label: &str, values: &[Vec<f64>]| {
        for (v, (got, want)) in values.iter().zip(&reference).enumerate() {
            for (g, w) in got.iter().zip(want) {
                let same = (g.is_infinite() && w.is_infinite()) || (g - w).abs() < 1e-9;
                assert!(same, "{label}: vertex {v} differs ({g} vs {w})");
            }
        }
    };

    let native = SessionBuilder::new(&graph)
        .partitioned_by(partitioning.clone())
        .profile(RuntimeProfile::powergraph())
        .dataset("orkut-like")
        .max_iterations(500)
        .build()
        .unwrap()
        .run_native(&algorithm);
    check("native", &native.values);

    for (label, devices) in [("gpu", gpus(nodes)), ("cpu", cpus(nodes))] {
        let mut session = SessionBuilder::new(&graph)
            .partitioned_by(partitioning.clone())
            .profile(RuntimeProfile::powergraph())
            .devices(devices)
            .dataset("orkut-like")
            .max_iterations(500)
            .build()
            .unwrap();
        let accelerated = session.run(&algorithm).unwrap();
        check(label, &accelerated.values);
        assert!(accelerated.report.converged);
    }

    // Baselines must agree as well.
    let mut gunrock = GunrockLike::new(gpu_v100("gunrock"));
    let (_, gunrock_values) = gunrock.run(&graph, &algorithm, "orkut-like", 500).unwrap();
    check("gunrock", &gunrock_values);

    let mut lux = LuxLike::new(gpus(nodes), NetworkModel::datacenter());
    let (_, lux_values) = lux
        .run(&graph, partitioning, &algorithm, "orkut-like", 500)
        .unwrap();
    check("lux", &lux_values);
}

#[test]
fn middleware_configuration_never_changes_pagerank_results() {
    let graph: PropertyGraph<RankValue, f64> = PropertyGraph::from_edge_list(
        orkut_like(9),
        RankValue {
            rank: 1.0,
            out_degree: 0,
        },
    )
    .unwrap();
    let algorithm = PageRank::new(10);
    let partitioning = HashEdgePartitioner::new(3).partition(&graph, 4).unwrap();
    let reference = gx_plug::algos::reference::pagerank_reference(&graph, 0.85, 10, 1.0);

    // One deployment serves the whole configuration sweep: only the
    // middleware configuration changes between runs.
    let mut session = SessionBuilder::new(&graph)
        .partitioned_by(partitioning)
        .profile(RuntimeProfile::graphx())
        .devices(gpus(4))
        .dataset("orkut-like")
        .max_iterations(10)
        .build()
        .unwrap();

    let configs = [
        ("optimised", MiddlewareConfig::optimized()),
        ("baseline", MiddlewareConfig::baseline()),
        (
            "no pipeline",
            MiddlewareConfig::optimized().with_pipeline(PipelineMode::Disabled),
        ),
        (
            "fixed blocks",
            MiddlewareConfig::optimized().with_pipeline(PipelineMode::FixedBlockCount(7)),
        ),
        (
            "no caching",
            MiddlewareConfig::optimized().with_caching(false),
        ),
        (
            "no skipping",
            MiddlewareConfig::optimized().with_skipping(false),
        ),
    ];
    for (label, config) in configs {
        session.set_config(config);
        let outcome = session.run(&algorithm).unwrap();
        for (v, (got, want)) in outcome.values.iter().zip(&reference).enumerate() {
            assert!(
                (got.rank - want).abs() < 1e-9,
                "{label}: vertex {v} rank {} vs reference {}",
                got.rank,
                want
            );
        }
    }
}

#[test]
fn label_propagation_matches_reference_through_the_middleware() {
    let graph: PropertyGraph<u32, f64> =
        PropertyGraph::from_edge_list(orkut_like(13), 0u32).unwrap();
    let algorithm = LabelPropagation::paper_default();
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 3)
        .unwrap();
    let reference = gx_plug::algos::reference::label_propagation_reference(&graph, 15);
    let outcome = SessionBuilder::new(&graph)
        .partitioned_by(partitioning)
        .profile(RuntimeProfile::powergraph())
        .devices(gpus(3))
        .dataset("orkut-like")
        .max_iterations(15)
        .build()
        .unwrap()
        .run(&algorithm)
        .unwrap();
    assert_eq!(outcome.values, reference);
}

#[test]
fn connected_components_and_kcore_run_through_the_full_stack() {
    // Connected components.
    let graph: PropertyGraph<u32, f64> =
        PropertyGraph::from_edge_list(orkut_like(21), 0u32).unwrap();
    let cc = ConnectedComponents;
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 2)
        .unwrap();
    let reference = gx_plug::algos::reference::connected_components_reference(&graph);
    let outcome = SessionBuilder::new(&graph)
        .partitioned_by(partitioning)
        .profile(RuntimeProfile::powergraph())
        .devices(gpus(2))
        .dataset("orkut-like")
        .max_iterations(10_000)
        .build()
        .unwrap()
        .run(&cc)
        .unwrap();
    assert_eq!(outcome.values, reference);

    // k-core over a symmetrised version of the same graph.
    let mut symmetric = orkut_like(21);
    symmetric.symmetrize();
    let graph: PropertyGraph<gx_plug::algos::CoreState, f64> =
        PropertyGraph::from_edge_list(symmetric, gx_plug::algos::CoreState { alive: true })
            .unwrap();
    let kcore = KCore::new(8);
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 2)
        .unwrap();
    let reference = gx_plug::algos::reference::k_core_reference(&graph, 8);
    let outcome = SessionBuilder::new(&graph)
        .partitioned_by(partitioning)
        .profile(RuntimeProfile::powergraph())
        .devices(gpus(2))
        .dataset("orkut-like")
        .max_iterations(kcore.max_rounds)
        .build()
        .unwrap()
        .run(&kcore)
        .unwrap();
    let alive: Vec<bool> = outcome.values.iter().map(|s| s.alive).collect();
    assert_eq!(alive, reference);
}

#[test]
fn graphx_and_powergraph_profiles_agree_on_results_but_not_on_time() {
    let graph: PropertyGraph<Vec<f64>, f64> =
        PropertyGraph::from_edge_list(orkut_like(33), Vec::new()).unwrap();
    let algorithm = MultiSourceSssp::new(vec![0, 1]);
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 4)
        .unwrap();
    let run_profile = |profile: RuntimeProfile| {
        SessionBuilder::new(&graph)
            .partitioned_by(partitioning.clone())
            .profile(profile)
            .dataset("orkut-like")
            .max_iterations(500)
            .build()
            .unwrap()
            .run_native(&algorithm)
    };
    let graphx = run_profile(RuntimeProfile::graphx());
    let powergraph = run_profile(RuntimeProfile::powergraph());
    assert_eq!(graphx.values, powergraph.values);
    assert!(
        powergraph.report.total_time() < graphx.report.total_time(),
        "the C++ upper system must be faster than the JVM one"
    );
}

#[test]
fn inter_iteration_optimisations_reduce_data_movement_and_time() {
    let graph: PropertyGraph<Vec<f64>, f64> =
        PropertyGraph::from_edge_list(orkut_like(44), Vec::new()).unwrap();
    let algorithm = MultiSourceSssp::paper_default();
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 4)
        .unwrap();
    // One deployment per configuration so both runs pay the same setup and
    // the total-time comparison stays apples to apples.
    let run = |config: MiddlewareConfig| {
        SessionBuilder::new(&graph)
            .partitioned_by(partitioning.clone())
            .profile(RuntimeProfile::graphx())
            .devices(gpus(4))
            .config(config)
            .dataset("orkut-like")
            .max_iterations(500)
            .build()
            .unwrap()
            .run(&algorithm)
            .unwrap()
    };
    let optimised = run(MiddlewareConfig::optimized());
    let naive = run(MiddlewareConfig::baseline());
    let moved = |outcome: &RunOutcome<Vec<f64>>| {
        outcome
            .agent_stats
            .iter()
            .map(|s| s.downloaded_entities + s.uploaded_entities)
            .sum::<u64>()
    };
    assert!(
        moved(&optimised) < moved(&naive),
        "optimisations must reduce upper-system data movement ({} vs {})",
        moved(&optimised),
        moved(&naive)
    );
    assert!(
        optimised.report.total_time() < naive.report.total_time(),
        "optimisations must reduce total time"
    );
    assert_eq!(optimised.values, naive.values);
}

#[test]
fn job_service_serves_mixed_tenants_against_the_reference() {
    use std::sync::Arc;

    // Multi-tenant serving through the full stack: SSSP jobs with distinct
    // source sets race in from several submitter threads at different
    // priorities, and every result must match the sequential reference.
    let graph: Arc<PropertyGraph<Vec<f64>, f64>> =
        Arc::new(PropertyGraph::from_edge_list(orkut_like(5), Vec::new()).unwrap());
    let nodes = 3;
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, nodes)
        .unwrap();
    let service = GraphService::builder(Arc::clone(&graph))
        .partitioned_by(partitioning)
        .profile(RuntimeProfile::powergraph())
        .devices(gpus(nodes))
        .dataset("orkut-like")
        .max_iterations(500)
        .worker_sessions(2)
        .build()
        .unwrap();

    let tenants: Vec<(MultiSourceSssp, JobPriority)> = (0..6u32)
        .map(|i| {
            let priority = match i % 3 {
                0 => JobPriority::High,
                1 => JobPriority::Normal,
                _ => JobPriority::Low,
            };
            (MultiSourceSssp::new(vec![i, i + 7]), priority)
        })
        .collect();
    let outcomes: Vec<(MultiSourceSssp, RunOutcome<Vec<f64>>)> = std::thread::scope(|scope| {
        let submitters: Vec<_> = tenants
            .into_iter()
            .map(|(algorithm, priority)| {
                let service = service.clone();
                scope.spawn(move || {
                    let ticket = service
                        .submit_with(algorithm.clone(), JobOptions::new().with_priority(priority))
                        .unwrap();
                    (algorithm, ticket.wait().unwrap())
                })
            })
            .collect();
        submitters.into_iter().map(|s| s.join().unwrap()).collect()
    });
    service.shutdown();

    for (algorithm, outcome) in outcomes {
        assert!(outcome.report.converged, "{:?}", algorithm.sources());
        let reference =
            gx_plug::algos::reference::multi_source_sssp_reference(&graph, algorithm.sources());
        for (v, (got, want)) in outcome.values.iter().zip(&reference).enumerate() {
            for (g, w) in got.iter().zip(want) {
                let same = (g.is_infinite() && w.is_infinite()) || (g - w).abs() < 1e-9;
                assert!(
                    same,
                    "sources {:?}: vertex {v} differs",
                    algorithm.sources()
                );
            }
        }
    }
    let stats = service.stats();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.running, 0);
}

#[test]
fn session_close_is_idempotent_and_the_deployment_recovers() {
    let graph: PropertyGraph<Vec<f64>, f64> =
        PropertyGraph::from_edge_list(orkut_like(9), Vec::new()).unwrap();
    let algorithm = MultiSourceSssp::paper_default();
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 2)
        .unwrap();
    let mut session = SessionBuilder::new(&graph)
        .partitioned_by(partitioning)
        .devices(gpus(2))
        .max_iterations(500)
        .build()
        .unwrap();
    let first = session.run(&algorithm).unwrap();
    assert!(first.report.setup > SimDuration::ZERO);
    // Closing is idempotent; a closed session is not poisoned, it just pays
    // device initialisation again on its next run — like a fresh deployment.
    session.close();
    session.close();
    let reopened = session.run(&algorithm).unwrap();
    assert_eq!(reopened.report.setup, first.report.setup);
    assert_eq!(reopened.values, first.values);
    // And an explicitly closed session drops cleanly (Drop closes again).
    session.close();
    drop(session);
}

#[test]
fn panicking_job_poisons_only_its_own_session() {
    /// An algorithm whose kernel panics on its first triplet.
    struct PoisonPill;

    impl GraphAlgorithm<Vec<f64>, f64> for PoisonPill {
        type Msg = Vec<f64>;
        fn init_vertex(&self, _v: VertexId, _d: usize) -> Vec<f64> {
            vec![0.0]
        }
        fn msg_gen(
            &self,
            _t: &Triplet<Vec<f64>, f64>,
            _i: usize,
        ) -> Vec<AddressedMessage<Vec<f64>>> {
            panic!("poison pill");
        }
        fn msg_merge(&self, a: Vec<f64>, _b: Vec<f64>) -> Vec<f64> {
            a
        }
        fn msg_apply(
            &self,
            _v: VertexId,
            _c: &Vec<f64>,
            _m: &Vec<f64>,
            _i: usize,
        ) -> Option<Vec<f64>> {
            None
        }
        fn name(&self) -> &'static str {
            "poison-pill"
        }
    }

    let graph: PropertyGraph<Vec<f64>, f64> =
        PropertyGraph::from_edge_list(orkut_like(13), Vec::new()).unwrap();
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 2)
        .unwrap();
    let mut session = SessionBuilder::new(&graph)
        .partitioned_by(partitioning)
        .devices(gpus(2))
        .max_iterations(500)
        .build()
        .unwrap();
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = session.run(&PoisonPill);
    }));
    assert!(panicked.is_err(), "the poison pill must propagate");
    // The panicking run consumed the session's daemons (each shut its device
    // context down as it dropped), so the session reports the typed error
    // instead of hanging or leaking — and dropping it stays safe.
    assert!(matches!(
        session.run(&MultiSourceSssp::paper_default()),
        Err(SessionError::NoDevices)
    ));
    session.close();
    drop(session);
}
