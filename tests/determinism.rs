//! Serial vs threaded determinism.
//!
//! The threaded runtime (daemon worker threads + per-node scoped threads)
//! must be a pure scheduling change: a threaded `run_accelerated` has to
//! produce **bit-identical** vertex values, iteration counts and middleware
//! data-movement counters to the serial mode.  PageRank exercises
//! floating-point *sum* merging (where any reordering would show up in the
//! last bits) and SSSP exercises frontier-driven min merging.

use gx_plug::core::ExecutionMode;
use gx_plug::prelude::*;

fn mixed_devices(nodes: usize) -> Vec<Vec<Device>> {
    (0..nodes)
        .map(|n| {
            vec![
                gpu_v100(format!("n{n}-gpu")),
                cpu_xeon_20c(format!("n{n}-cpu")),
            ]
        })
        .collect()
}

/// Runs the same workload in both execution modes and compares exactly;
/// `canonical_bits` maps a vertex value to its exact bit representation.
fn assert_modes_identical<V, A, B>(
    algorithm: &A,
    default_value: V,
    parts: usize,
    seed: u64,
    canonical_bits: B,
) where
    V: Clone + PartialEq + Send + Sync + std::fmt::Debug,
    A: GraphAlgorithm<V, f64>,
    B: Fn(&V) -> Vec<u64>,
{
    let list = Rmat::new(10, 8.0).generate(seed);
    let graph = PropertyGraph::from_edge_list(list, default_value).unwrap();
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, parts)
        .unwrap();
    let run = |mode| {
        run_accelerated(
            &graph,
            partitioning.clone(),
            algorithm,
            RuntimeProfile::powergraph(),
            NetworkModel::datacenter(),
            mixed_devices(parts),
            MiddlewareConfig::default().with_execution(mode),
            "rmat",
            100,
        )
    };
    let serial = run(ExecutionMode::Serial);
    let threaded = run(ExecutionMode::Threaded);

    assert_eq!(
        serial.report.num_iterations(),
        threaded.report.num_iterations(),
        "iteration counts diverged for {}",
        algorithm.name()
    );
    assert_eq!(serial.report.converged, threaded.report.converged);
    assert_eq!(serial.values.len(), threaded.values.len());
    for (v, (a, b)) in serial.values.iter().zip(&threaded.values).enumerate() {
        assert_eq!(
            canonical_bits(a),
            canonical_bits(b),
            "vertex {v} diverged for {}: serial {a:?} vs threaded {b:?}",
            algorithm.name()
        );
    }
    // The middleware's data-movement accounting must match too: the threaded
    // agent plans with the very same code as the serial one.
    assert_eq!(serial.agent_stats.len(), threaded.agent_stats.len());
    for (node, (s, t)) in serial
        .agent_stats
        .iter()
        .zip(&threaded.agent_stats)
        .enumerate()
    {
        assert_eq!(s, t, "agent stats diverged on node {node}");
    }
}

#[test]
fn threaded_pagerank_is_bit_identical_to_serial() {
    // PageRank merges messages by floating-point *addition*: any reordering
    // of the merge would flip low-order mantissa bits and fail this test.
    let default = RankValue {
        rank: 1.0,
        out_degree: 0,
    };
    assert_modes_identical(&PageRank::new(20), default, 3, 11, |value: &RankValue| {
        vec![value.rank.to_bits(), value.out_degree as u64]
    });
}

#[test]
fn threaded_sssp_is_bit_identical_to_serial() {
    assert_modes_identical(
        &MultiSourceSssp::paper_default(),
        Vec::new(),
        3,
        23,
        |distances: &Vec<f64>| distances.iter().map(|d| d.to_bits()).collect(),
    );
}

#[test]
fn threaded_sssp_is_deterministic_across_repeated_runs() {
    let list = Rmat::new(10, 8.0).generate(5);
    let graph = PropertyGraph::from_edge_list(list, Vec::new()).unwrap();
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 2)
        .unwrap();
    let run = || {
        run_accelerated(
            &graph,
            partitioning.clone(),
            &MultiSourceSssp::paper_default(),
            RuntimeProfile::graphx(),
            NetworkModel::datacenter(),
            mixed_devices(2),
            MiddlewareConfig::default(),
            "rmat",
            100,
        )
    };
    let first = run();
    let second = run();
    assert_eq!(
        first.report.num_iterations(),
        second.report.num_iterations()
    );
    for (a, b) in first.values.iter().zip(&second.values) {
        let bits = |d: &Vec<f64>| d.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a), bits(b));
    }
}
