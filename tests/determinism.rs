//! Serial vs threaded determinism, and session-reuse determinism.
//!
//! The threaded runtime (daemon worker threads + per-node scoped threads)
//! must be a pure scheduling change: a threaded session run has to produce
//! **bit-identical** vertex values, iteration counts and middleware
//! data-movement counters to the serial mode.  PageRank exercises
//! floating-point *sum* merging (where any reordering would show up in the
//! last bits) and SSSP exercises frontier-driven min merging.
//!
//! Session reuse must be a pure *deployment* change as well: running twice
//! on one deployed [`Session`] has to be bit-identical to two fresh one-shot
//! runs — only the amortised setup cost may differ.
//!
//! Both guarantees now run on the zero-copy triplet path (borrowed blocks,
//! range shares, pooled buffers); `tests/zero_copy.rs` additionally proves
//! that path performs exactly one attribute clone per processed triplet in
//! each execution mode.

use gx_plug::prelude::*;

fn mixed_devices(nodes: usize) -> Vec<Vec<DeviceSpec>> {
    (0..nodes)
        .map(|n| {
            vec![
                gpu_v100(format!("n{n}-gpu")),
                cpu_xeon_20c(format!("n{n}-cpu")),
            ]
        })
        .collect()
}

/// Runs the same workload in both execution modes and compares exactly;
/// `canonical_bits` maps a vertex value to its exact bit representation.
fn assert_modes_identical<V, A, B>(
    algorithm: &A,
    default_value: V,
    parts: usize,
    seed: u64,
    canonical_bits: B,
) where
    V: Clone + PartialEq + Send + Sync + std::fmt::Debug,
    A: GraphAlgorithm<V, f64>,
    B: Fn(&V) -> Vec<u64>,
{
    let list = Rmat::new(10, 8.0).generate(seed);
    let graph = PropertyGraph::from_edge_list(list, default_value).unwrap();
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, parts)
        .unwrap();
    // One fresh deployment per mode, so both runs pay the same setup and the
    // agent statistics (including init time) must match exactly.
    let run = |mode| {
        SessionBuilder::new(&graph)
            .partitioned_by(partitioning.clone())
            .profile(RuntimeProfile::powergraph())
            .network(NetworkModel::datacenter())
            .devices(mixed_devices(parts))
            .config(MiddlewareConfig::default().with_execution(mode))
            .dataset("rmat")
            .max_iterations(100)
            .build()
            .unwrap()
            .run(algorithm)
            .unwrap()
    };
    let serial = run(ExecutionMode::Serial);
    let threaded = run(ExecutionMode::Threaded);

    assert_eq!(
        serial.report.num_iterations(),
        threaded.report.num_iterations(),
        "iteration counts diverged for {}",
        algorithm.name()
    );
    assert_eq!(serial.report.converged, threaded.report.converged);
    assert_eq!(serial.values.len(), threaded.values.len());
    for (v, (a, b)) in serial.values.iter().zip(&threaded.values).enumerate() {
        assert_eq!(
            canonical_bits(a),
            canonical_bits(b),
            "vertex {v} diverged for {}: serial {a:?} vs threaded {b:?}",
            algorithm.name()
        );
    }
    // The middleware's data-movement accounting must match too: the threaded
    // agent plans with the very same code as the serial one.
    assert_eq!(serial.agent_stats.len(), threaded.agent_stats.len());
    for (node, (s, t)) in serial
        .agent_stats
        .iter()
        .zip(&threaded.agent_stats)
        .enumerate()
    {
        assert_eq!(s, t, "agent stats diverged on node {node}");
    }
}

#[test]
fn threaded_pagerank_is_bit_identical_to_serial() {
    // PageRank merges messages by floating-point *addition*: any reordering
    // of the merge would flip low-order mantissa bits and fail this test.
    let default = RankValue {
        rank: 1.0,
        out_degree: 0,
    };
    assert_modes_identical(&PageRank::new(20), default, 3, 11, |value: &RankValue| {
        vec![value.rank.to_bits(), value.out_degree as u64]
    });
}

#[test]
fn threaded_sssp_is_bit_identical_to_serial() {
    assert_modes_identical(
        &MultiSourceSssp::paper_default(),
        Vec::new(),
        3,
        23,
        |distances: &Vec<f64>| distances.iter().map(|d| d.to_bits()).collect(),
    );
}

#[test]
fn threaded_sssp_is_deterministic_across_repeated_runs() {
    let list = Rmat::new(10, 8.0).generate(5);
    let graph = PropertyGraph::from_edge_list(list, Vec::new()).unwrap();
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 2)
        .unwrap();
    let run = || {
        SessionBuilder::new(&graph)
            .partitioned_by(partitioning.clone())
            .profile(RuntimeProfile::graphx())
            .devices(mixed_devices(2))
            .dataset("rmat")
            .max_iterations(100)
            .build()
            .unwrap()
            .run(&MultiSourceSssp::paper_default())
            .unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(
        first.report.num_iterations(),
        second.report.num_iterations()
    );
    for (a, b) in first.values.iter().zip(&second.values) {
        let bits = |d: &Vec<f64>| d.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a), bits(b));
    }
}

/// Runs the same workload on one deployed session with the sim backend,
/// swaps in the host-parallel backend with [`Session::set_backend`], runs
/// again and compares exactly.  Backends are interchangeable behind the
/// kernel ABI: chunked parallel execution must be a pure wall-clock change.
fn assert_backends_identical<V, A, B>(
    algorithm: &A,
    default_value: V,
    mode: ExecutionMode,
    seed: u64,
    canonical_bits: B,
) where
    V: Clone + PartialEq + Send + Sync + std::fmt::Debug,
    A: GraphAlgorithm<V, f64>,
    B: Fn(&V) -> Vec<u64>,
{
    let parts = 3;
    let list = Rmat::new(10, 8.0).generate(seed);
    let graph = PropertyGraph::from_edge_list(list, default_value).unwrap();
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, parts)
        .unwrap();
    let mut session = SessionBuilder::new(&graph)
        .partitioned_by(partitioning)
        .profile(RuntimeProfile::powergraph())
        .network(NetworkModel::datacenter())
        .devices(mixed_devices(parts))
        .config(MiddlewareConfig::default().with_execution(mode))
        .dataset("rmat")
        .max_iterations(100)
        .build()
        .unwrap();
    let sim = session.run(algorithm).unwrap();
    // Swap the backend on the SAME deployed session: daemons are rebuilt
    // from the stored specs with real OS-thread execution.
    session.set_backend(BackendKind::HostParallel { threads: Some(4) });
    let parallel = session.run(algorithm).unwrap();
    // The swap tears down the device contexts, so setup is paid again —
    // exactly the fresh-deployment cost, which keeps the stats comparable.
    assert_eq!(sim.report.setup, parallel.report.setup);
    assert_eq!(
        sim.report.num_iterations(),
        parallel.report.num_iterations(),
        "iteration counts diverged for {} in {mode:?}",
        algorithm.name()
    );
    assert_eq!(sim.report.converged, parallel.report.converged);
    assert_eq!(sim.values.len(), parallel.values.len());
    for (v, (a, b)) in sim.values.iter().zip(&parallel.values).enumerate() {
        assert_eq!(
            canonical_bits(a),
            canonical_bits(b),
            "vertex {v} diverged for {} in {mode:?}: sim {a:?} vs host-parallel {b:?}",
            algorithm.name()
        );
    }
    // Simulated time attribution is backend-independent too: the identical
    // cost models drive identical middleware accounting.
    assert_eq!(sim.agent_stats, parallel.agent_stats);
    // Swapping back reproduces the sim run bit-for-bit.
    session.set_backend(BackendKind::Sim);
    let sim_again = session.run(algorithm).unwrap();
    for (a, b) in sim.values.iter().zip(&sim_again.values) {
        assert_eq!(canonical_bits(a), canonical_bits(b));
    }
}

#[test]
fn host_parallel_backend_is_bit_identical_to_sim_backend() {
    // PageRank merges by floating-point addition — any chunk-order leak in
    // the parallel backend would flip low-order mantissa bits — and SSSP
    // exercises frontier-driven min merging.  Both execution modes, since
    // the backend chunks *within* a daemon while the mode threads *across*
    // daemons and nodes.
    for mode in [ExecutionMode::Serial, ExecutionMode::Threaded] {
        let default = RankValue {
            rank: 1.0,
            out_degree: 0,
        };
        assert_backends_identical(
            &PageRank::new(20),
            default,
            mode,
            11,
            |value: &RankValue| vec![value.rank.to_bits(), value.out_degree as u64],
        );
        assert_backends_identical(
            &MultiSourceSssp::paper_default(),
            Vec::new(),
            mode,
            23,
            |distances: &Vec<f64>| distances.iter().map(|d| d.to_bits()).collect(),
        );
    }
}

#[test]
fn registry_take_and_return_is_consistent_under_concurrency() {
    // Hammer one shared pool from several threads: every take must hand out
    // a distinct device and every release must put it back, so the pool
    // always converges to its full population with no device lost or
    // duplicated.
    let count = 8usize;
    let registry = DeviceRegistry::with_devices(
        (0..count)
            .map(|i| {
                if i % 2 == 0 {
                    gpu_v100(format!("g{i}"))
                } else {
                    cpu_xeon_20c(format!("c{i}"))
                }
            })
            .collect(),
    );
    let full_capacity = registry.idle_capacity();
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let registry = registry.clone();
            scope.spawn(move || {
                for round in 0..200 {
                    let device = if (worker + round) % 3 == 0 {
                        registry.take(DeviceKind::Gpu).ok()
                    } else {
                        registry.take_any()
                    };
                    if let Some(mut device) = device {
                        // Touch the context so round-tripped devices carry
                        // real state, then hand it back.
                        device.initialize();
                        registry.release(device);
                    }
                }
            });
        }
    });
    assert_eq!(registry.available(), count);
    assert_eq!(registry.available_of(DeviceKind::Gpu), count / 2);
    assert!((registry.idle_capacity() - full_capacity).abs() < 1e-9);
    // No device was lost or duplicated.
    let mut names: Vec<String> = registry.specs().into_iter().map(|s| s.name).collect();
    names.sort();
    let mut expected: Vec<String> = (0..count)
        .map(|i| {
            if i % 2 == 0 {
                format!("g{i}")
            } else {
                format!("c{i}")
            }
        })
        .collect();
    expected.sort();
    assert_eq!(names, expected);
}

/// Strips the amortised deployment cost from agent statistics so a reused
/// session's run can be compared exactly against a fresh one-shot run.
fn without_init_time(stats: &[gx_plug::core::AgentStats]) -> Vec<gx_plug::core::AgentStats> {
    stats
        .iter()
        .map(|s| {
            let mut s = *s;
            s.init_time = SimDuration::ZERO;
            s
        })
        .collect()
}

#[test]
fn reused_session_is_bit_identical_to_one_shot_runs() {
    let list = Rmat::new(10, 8.0).generate(31);
    let graph: PropertyGraph<Vec<f64>, f64> =
        PropertyGraph::from_edge_list(list, Vec::new()).unwrap();
    let parts = 3;
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, parts)
        .unwrap();
    let deploy = || {
        SessionBuilder::new(&graph)
            .partitioned_by(partitioning.clone())
            .profile(RuntimeProfile::powergraph())
            .devices(mixed_devices(parts))
            .dataset("rmat")
            .max_iterations(100)
            .build()
            .unwrap()
    };
    // Two different jobs — a multi-algorithm serving scenario.
    let algo_a = MultiSourceSssp::paper_default();
    let algo_b = MultiSourceSssp::new(vec![1, 2, 3]);

    // Two consecutive runs on one deployed session...
    let mut session = deploy();
    let first = session.run(&algo_a).unwrap();
    let second = session.run(&algo_b).unwrap();
    // ...versus two fresh one-shot deployments.
    let fresh_a = deploy().run(&algo_a).unwrap();
    let fresh_b = deploy().run(&algo_b).unwrap();

    let bits = |values: &[Vec<f64>]| -> Vec<Vec<u64>> {
        values
            .iter()
            .map(|d| d.iter().map(|x| x.to_bits()).collect())
            .collect()
    };
    // Vertex values are bit-identical.
    assert_eq!(bits(&first.values), bits(&fresh_a.values));
    assert_eq!(bits(&second.values), bits(&fresh_b.values));
    // Every per-iteration metric (compute, middleware, sync, counters) is
    // identical too — the reused session re-runs the exact same computation.
    assert_eq!(first.report.iterations, fresh_a.report.iterations);
    assert_eq!(second.report.iterations, fresh_b.report.iterations);
    assert_eq!(first.report.converged, fresh_a.report.converged);
    assert_eq!(second.report.converged, fresh_b.report.converged);
    // The middleware data movement matches exactly; only the amortised
    // device-initialisation time may differ (zero on the reused run).
    assert_eq!(
        without_init_time(&first.agent_stats),
        without_init_time(&fresh_a.agent_stats)
    );
    assert_eq!(
        without_init_time(&second.agent_stats),
        without_init_time(&fresh_b.agent_stats)
    );
    // The deployment itself is paid exactly once per session.
    assert_eq!(first.report.setup, fresh_a.report.setup);
    assert!(first.report.setup > SimDuration::ZERO);
    assert!(second.report.setup.is_zero());
    assert!(fresh_b.report.setup > SimDuration::ZERO);
}

/// Submits `jobs` through a [`GraphService`] (2 pooled worker sessions, 4
/// concurrent submitter threads) and compares every outcome bit-for-bit
/// against the same job run serially on its own fresh single-tenant session.
///
/// Scheduling must be a pure *placement* change: whichever worker a job
/// lands on, and whatever ran on that worker before it, the job's vertex
/// values, per-iteration metrics and middleware data movement have to match
/// the fresh-session reference exactly.  Only the amortised deployment cost
/// (`report.setup`, `AgentStats::init_time`) may differ — a pooled worker
/// pays it once for its whole job stream.
fn assert_service_matches_serial<V, A, B>(
    jobs: Vec<A>,
    default_value: V,
    mode: ExecutionMode,
    seed: u64,
    canonical_bits: B,
) where
    V: Clone + PartialEq + Send + Sync + std::fmt::Debug + 'static,
    A: GraphAlgorithm<V, f64> + Clone + 'static,
    B: Fn(&V) -> Vec<u64>,
{
    use std::sync::Arc;

    let parts = 3;
    let list = Rmat::new(10, 8.0).generate(seed);
    let graph = Arc::new(PropertyGraph::from_edge_list(list, default_value).unwrap());
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, parts)
        .unwrap();
    let config = MiddlewareConfig::default().with_execution(mode);

    // The reference: every job on its own fresh session, serially.
    let serial: Vec<RunOutcome<V>> = jobs
        .iter()
        .map(|job| {
            SessionBuilder::new(&graph)
                .partitioned_by(partitioning.clone())
                .devices(mixed_devices(parts))
                .config(config)
                .dataset("rmat")
                .max_iterations(100)
                .build()
                .unwrap()
                .run(job)
                .unwrap()
        })
        .collect();

    // The same jobs through the service: 2 pooled deployments, submissions
    // racing in from 4 threads.
    let service = GraphService::builder(Arc::clone(&graph))
        .partitioned_by(partitioning.clone())
        .devices(mixed_devices(parts))
        .config(config)
        .dataset("rmat")
        .max_iterations(100)
        .worker_sessions(2)
        .build()
        .unwrap();
    let outcomes: Vec<(usize, RunOutcome<V>)> = std::thread::scope(|scope| {
        let submitters: Vec<_> = (0..4usize)
            .map(|t| {
                let service = service.clone();
                let jobs = &jobs;
                scope.spawn(move || {
                    jobs.iter()
                        .enumerate()
                        .filter(|(index, _)| index % 4 == t)
                        .map(|(index, job)| {
                            let ticket = service.submit(job.clone()).unwrap();
                            (index, ticket.wait().unwrap())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        submitters
            .into_iter()
            .flat_map(|s| s.join().unwrap())
            .collect()
    });
    service.shutdown();

    assert_eq!(outcomes.len(), serial.len());
    for (index, outcome) in outcomes {
        let reference = &serial[index];
        assert_eq!(
            outcome.report.num_iterations(),
            reference.report.num_iterations(),
            "iteration counts diverged for job {index} in {mode:?}"
        );
        assert_eq!(outcome.report.converged, reference.report.converged);
        assert_eq!(outcome.values.len(), reference.values.len());
        for (v, (a, b)) in outcome.values.iter().zip(&reference.values).enumerate() {
            assert_eq!(
                canonical_bits(a),
                canonical_bits(b),
                "vertex {v} diverged for job {index} in {mode:?}: service {a:?} vs serial {b:?}"
            );
        }
        // Per-iteration metrics and data movement are exact; only the
        // amortised deployment cost may differ between a pooled worker and a
        // fresh session.
        assert_eq!(outcome.report.iterations, reference.report.iterations);
        assert_eq!(
            without_init_time(&outcome.agent_stats),
            without_init_time(&reference.agent_stats)
        );
    }
}

#[test]
fn concurrent_service_pagerank_is_bit_identical_to_serial_sessions() {
    // PageRank's float-sum merging makes any scheduling-induced reordering
    // visible in the last mantissa bits.  An 8-job damping/length sweep.
    let jobs: Vec<PageRank> = (0..8)
        .map(|i| PageRank::new(10 + i % 3).with_damping(0.80 + 0.02 * i as f64))
        .collect();
    let default = RankValue {
        rank: 1.0,
        out_degree: 0,
    };
    for mode in [ExecutionMode::Serial, ExecutionMode::Threaded] {
        assert_service_matches_serial(jobs.clone(), default, mode, 11, |value: &RankValue| {
            vec![value.rank.to_bits(), value.out_degree as u64]
        });
    }
}

#[test]
fn concurrent_service_sssp_is_bit_identical_to_serial_sessions() {
    // A multi-tenant source sweep: 8 SSSP jobs with distinct frontiers.
    let jobs: Vec<MultiSourceSssp> = (0..8u32)
        .map(|i| MultiSourceSssp::new(vec![i, i + 16]))
        .collect();
    for mode in [ExecutionMode::Serial, ExecutionMode::Threaded] {
        assert_service_matches_serial(jobs.clone(), Vec::new(), mode, 23, |d: &Vec<f64>| {
            d.iter().map(|x| x.to_bits()).collect()
        });
    }
}

/// Builds a small service over the given graph for the cache/fusion tests.
fn cache_service(
    graph: &std::sync::Arc<PropertyGraph<Vec<f64>, f64>>,
    mode: ExecutionMode,
    configure: impl FnOnce(ServiceBuilder<Vec<f64>, f64>) -> ServiceBuilder<Vec<f64>, f64>,
) -> GraphService<Vec<f64>, f64> {
    let parts = 2;
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(graph, parts)
        .unwrap();
    configure(
        GraphService::builder(std::sync::Arc::clone(graph))
            .partitioned_by(partitioning)
            .devices(mixed_devices(parts))
            .config(MiddlewareConfig::default().with_execution(mode))
            .dataset("rmat")
            .max_iterations(100)
            .worker_sessions(1),
    )
    .build()
    .unwrap()
}

fn sssp_bits(values: &[Vec<f64>]) -> Vec<Vec<u64>> {
    values
        .iter()
        .map(|d| d.iter().map(|x| x.to_bits()).collect())
        .collect()
}

#[test]
fn cache_hits_are_bit_identical_to_the_fill_run() {
    let list = Rmat::new(10, 8.0).generate(41);
    let graph = std::sync::Arc::new(PropertyGraph::from_edge_list(list, Vec::new()).unwrap());
    for mode in [ExecutionMode::Serial, ExecutionMode::Threaded] {
        let service = cache_service(&graph, mode, |builder| builder);
        let algo = MultiSourceSssp::paper_default();
        let fill = service.submit(algo.clone()).unwrap().wait().unwrap();
        let hit = service.submit(algo.clone()).unwrap().wait().unwrap();
        // The whole outcome is served verbatim: values, per-iteration
        // metrics and middleware accounting.
        assert_eq!(sssp_bits(&fill.values), sssp_bits(&hit.values));
        assert_eq!(fill.report, hit.report);
        assert_eq!(fill.agent_stats, hit.agent_stats);
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1, "in {mode:?}");
        assert_eq!(stats.submitted, 1, "hits never reach the queue");
        assert!(stats.cache_hit_percentile(0.5).unwrap().as_millis() < 50);
    }
}

#[test]
fn pagerank_cache_misses_and_hits_are_bit_identical_to_a_fresh_session() {
    // The PageRank arm of the cache determinism suite: the fill run (a cache
    // *miss* taking the full dense-id data path) must be bit-identical to a
    // fresh single-tenant session, and the subsequent *hit* must serve that
    // outcome verbatim — in both execution modes.
    let list = Rmat::new(10, 8.0).generate(41);
    let default = RankValue {
        rank: 1.0,
        out_degree: 0,
    };
    let graph = std::sync::Arc::new(PropertyGraph::from_edge_list(list, default).unwrap());
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 2)
        .unwrap();
    let rank_bits = |values: &[RankValue]| -> Vec<Vec<u64>> {
        values
            .iter()
            .map(|v| vec![v.rank.to_bits(), v.out_degree as u64])
            .collect()
    };
    for mode in [ExecutionMode::Serial, ExecutionMode::Threaded] {
        let reference = SessionBuilder::new(&graph)
            .partitioned_by(partitioning.clone())
            .devices(mixed_devices(2))
            .config(MiddlewareConfig::default().with_execution(mode))
            .dataset("rmat")
            .max_iterations(100)
            .build()
            .unwrap()
            .run(&PageRank::new(20))
            .unwrap();
        let service = GraphService::builder(std::sync::Arc::clone(&graph))
            .partitioned_by(partitioning.clone())
            .devices(mixed_devices(2))
            .config(MiddlewareConfig::default().with_execution(mode))
            .dataset("rmat")
            .max_iterations(100)
            .worker_sessions(1)
            .build()
            .unwrap();
        let fill = service.submit(PageRank::new(20)).unwrap().wait().unwrap();
        let hit = service.submit(PageRank::new(20)).unwrap().wait().unwrap();
        assert_eq!(
            rank_bits(&fill.values),
            rank_bits(&reference.values),
            "cache miss diverged from fresh session in {mode:?}"
        );
        assert_eq!(rank_bits(&fill.values), rank_bits(&hit.values));
        assert_eq!(fill.report, hit.report);
        assert_eq!(fill.agent_stats, hit.agent_stats);
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1, "in {mode:?}");
        assert_eq!(stats.submitted, 1, "in {mode:?}");
    }
}

#[test]
fn concurrent_duplicates_resolve_single_flight_and_identical() {
    // 12 identical submissions race in from 4 threads against a 1-worker
    // service: every answer must be bit-identical to a fresh single-tenant
    // session run, while the cache + coalescing layers keep the number of
    // actual executions below the number of submissions.
    let list = Rmat::new(10, 8.0).generate(43);
    let graph = std::sync::Arc::new(PropertyGraph::from_edge_list(list, Vec::new()).unwrap());
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 2)
        .unwrap();
    let reference = SessionBuilder::new(&graph)
        .partitioned_by(partitioning)
        .devices(mixed_devices(2))
        .dataset("rmat")
        .max_iterations(100)
        .build()
        .unwrap()
        .run(&MultiSourceSssp::paper_default())
        .unwrap();
    let service = cache_service(&graph, ExecutionMode::Threaded, |builder| builder);
    let outcomes: Vec<RunOutcome<Vec<f64>>> = std::thread::scope(|scope| {
        let submitters: Vec<_> = (0..4)
            .map(|_| {
                let service = service.clone();
                scope.spawn(move || {
                    (0..3)
                        .map(|_| {
                            service
                                .submit(MultiSourceSssp::paper_default())
                                .unwrap()
                                .wait()
                                .unwrap()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        submitters
            .into_iter()
            .flat_map(|s| s.join().unwrap())
            .collect()
    });
    assert_eq!(outcomes.len(), 12);
    for outcome in &outcomes {
        assert_eq!(sssp_bits(&outcome.values), sssp_bits(&reference.values));
        assert_eq!(outcome.report.iterations, reference.report.iterations);
    }
    let stats = service.stats();
    // Every submission was served by a hit, a coalesced resolve or a run —
    // and the very first run is the only execution that was strictly needed,
    // so hits + coalesced account for everything except actual runs.
    let executions = stats.submitted - stats.coalesced_jobs;
    assert_eq!(stats.cache_hits + stats.submitted, 12);
    assert!(executions >= 1);
    assert!(
        stats.cache_hits + stats.coalesced_jobs > 0,
        "duplicate traffic must not run 12 times: {stats:?}"
    );
}

#[test]
fn bypass_and_refresh_policies_rerun_but_stay_identical() {
    let list = Rmat::new(10, 8.0).generate(47);
    let graph = std::sync::Arc::new(PropertyGraph::from_edge_list(list, Vec::new()).unwrap());
    let service = cache_service(&graph, ExecutionMode::Threaded, |builder| builder);
    let algo = MultiSourceSssp::new(vec![0, 5]);
    let fill = service.submit(algo.clone()).unwrap().wait().unwrap();
    let bypass = service
        .submit_with(
            algo.clone(),
            JobOptions::new().with_cache(CachePolicy::Bypass),
        )
        .unwrap()
        .wait()
        .unwrap();
    let refresh = service
        .submit_with(
            algo.clone(),
            JobOptions::new().with_cache(CachePolicy::Refresh),
        )
        .unwrap()
        .wait()
        .unwrap();
    // Both policies force fresh executions...
    assert_eq!(service.stats().cache_hits, 0);
    assert_eq!(service.stats().submitted, 3);
    // ...whose answers are bit-identical to the original fill run anyway.
    assert_eq!(sssp_bits(&fill.values), sssp_bits(&bypass.values));
    assert_eq!(sssp_bits(&fill.values), sssp_bits(&refresh.values));
    // The refresh re-filled the cache: the next default submission hits.
    service.submit(algo).unwrap().wait().unwrap();
    assert_eq!(service.stats().cache_hits, 1);
}

#[test]
fn tight_byte_budget_evicts_rather_than_serving_stale_results() {
    // A cache whose byte budget holds at most one outcome: alternating two
    // keys means every lookup either misses (evicted) or hits the entry for
    // exactly the right key — never a stale answer for the other key.
    let list = Rmat::new(10, 8.0).generate(53);
    let graph = std::sync::Arc::new(PropertyGraph::from_edge_list(list, Vec::new()).unwrap());
    let num_vertices = graph.num_vertices();
    // The cache accounts shallowly: one outcome charges a `Vec` header per
    // vertex (24 bytes) plus the structs.  A budget of 1.5 headers' worth
    // holds one outcome but never two.
    let one_outcome = num_vertices * 36;
    let service = cache_service(&graph, ExecutionMode::Threaded, |builder| {
        builder.cache_bytes(one_outcome)
    });
    let algo_a = MultiSourceSssp::paper_default();
    let algo_b = MultiSourceSssp::new(vec![9, 10, 11, 12]);
    let fresh_a = service.submit(algo_a.clone()).unwrap().wait().unwrap();
    let fresh_b = service.submit(algo_b.clone()).unwrap().wait().unwrap();
    assert!(service.cached_results() <= 1);
    for _ in 0..3 {
        let again_a = service.submit(algo_a.clone()).unwrap().wait().unwrap();
        let again_b = service.submit(algo_b.clone()).unwrap().wait().unwrap();
        assert_eq!(sssp_bits(&again_a.values), sssp_bits(&fresh_a.values));
        assert_eq!(sssp_bits(&again_b.values), sssp_bits(&fresh_b.values));
    }
    // Invalidation on top of eviction: still never stale.
    service.invalidate_cache();
    let after = service.submit(algo_a).unwrap().wait().unwrap();
    assert_eq!(sssp_bits(&after.values), sssp_bits(&fresh_a.values));
}

/// `MultiSourceSssp` behind a start gate, so the fusion test can hold the
/// single worker busy while compatible jobs pile up in the queue.  The
/// fusion hooks delegate to the real algorithm's source concatenation.
#[derive(Clone)]
struct GatedMulti {
    inner: MultiSourceSssp,
    gate: std::sync::Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
}

impl GatedMulti {
    fn new(inner: MultiSourceSssp) -> Self {
        Self {
            inner,
            gate: std::sync::Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new())),
        }
    }

    fn release(&self) {
        let (flag, condvar) = &*self.gate;
        *flag.lock().unwrap() = true;
        condvar.notify_all();
    }
}

impl GraphAlgorithm<Vec<f64>, f64> for GatedMulti {
    type Msg = Vec<f64>;
    fn init_vertex(&self, v: VertexId, d: usize) -> Vec<f64> {
        GraphAlgorithm::init_vertex(&self.inner, v, d)
    }
    fn msg_gen(&self, t: &Triplet<Vec<f64>, f64>, i: usize) -> Vec<AddressedMessage<Vec<f64>>> {
        let (flag, condvar) = &*self.gate;
        let mut open = flag.lock().unwrap();
        while !*open {
            open = condvar.wait(open).unwrap();
        }
        drop(open);
        GraphAlgorithm::msg_gen(&self.inner, t, i)
    }
    fn msg_merge(&self, a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
        GraphAlgorithm::msg_merge(&self.inner, a, b)
    }
    fn msg_apply(&self, v: VertexId, c: &Vec<f64>, m: &Vec<f64>, i: usize) -> Option<Vec<f64>> {
        GraphAlgorithm::msg_apply(&self.inner, v, c, m, i)
    }
    fn initial_active(&self, n: usize) -> Option<Vec<VertexId>> {
        GraphAlgorithm::initial_active(&self.inner, n)
    }
    fn name(&self) -> &'static str {
        "gated-multi"
    }
}

#[test]
fn fused_jobs_are_bit_identical_to_fresh_serial_sessions() {
    // Three SSSP jobs with distinct frontiers fuse into one sweep; each
    // member's extracted distance columns must match a fresh single-tenant
    // session running that member alone — in both execution modes.
    let list = Rmat::new(10, 8.0).generate(59);
    let graph = std::sync::Arc::new(PropertyGraph::from_edge_list(list, Vec::new()).unwrap());
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 2)
        .unwrap();
    let members = [
        MultiSourceSssp::new(vec![0, 1]),
        MultiSourceSssp::new(vec![2]),
        MultiSourceSssp::new(vec![3, 4, 5]),
    ];
    for mode in [ExecutionMode::Serial, ExecutionMode::Threaded] {
        let config = MiddlewareConfig::default().with_execution(mode);
        let service = cache_service(&graph, mode, |builder| builder.fusion_limit(3));
        // Hold the worker busy so all three members are queued together.
        let blocker = GatedMulti::new(MultiSourceSssp::new(vec![60]));
        let busy = service.submit(blocker.clone()).unwrap();
        while busy.status() == JobStatus::Queued {
            std::thread::yield_now();
        }
        let tickets: Vec<_> = members
            .iter()
            .map(|member| service.submit(member.clone()).unwrap())
            .collect();
        blocker.release();
        busy.wait().unwrap();
        let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert_eq!(service.stats().fused_runs, 1, "in {mode:?}");
        assert_eq!(service.stats().coalesced_jobs, 0);
        for (member, outcome) in members.iter().zip(&outcomes) {
            let reference = SessionBuilder::new(&graph)
                .partitioned_by(partitioning.clone())
                .devices(mixed_devices(2))
                .config(config)
                .dataset("rmat")
                .max_iterations(100)
                .build()
                .unwrap()
                .run(member)
                .unwrap();
            assert!(outcome.report.converged);
            assert_eq!(
                sssp_bits(&outcome.values),
                sssp_bits(&reference.values),
                "fused member with sources {:?} diverged in {mode:?}",
                member.sources()
            );
        }
    }
}
