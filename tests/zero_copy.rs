//! Steady-state zero-copy guarantees of the triplet hot path.
//!
//! The middleware's central perf claim after the borrowed-block refactor:
//! once a triplet is materialised into the iteration's reusable buffer (the
//! one join of the node's edge and vertex tables), **nothing downstream
//! copies it again** — capacity shares are index ranges, pipeline blocks are
//! borrowed views, kernels read in place.  These tests pin that down two
//! ways:
//!
//! * a clone-counting edge attribute proves the *exact* copy count: one edge
//!   attribute clone per processed triplet per iteration, in both execution
//!   modes, with bit-identical results (the determinism suite's guarantee
//!   extended to the borrowed-block path);
//! * the session's pooled triplet arenas prove the *allocation* story: a
//!   reused session re-running a workload it has seen performs zero arena
//!   reallocations — warm-up discovers the peak, steady state refills in
//!   place.

use gx_plug::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serialises the tests of this binary: both clone counting edges into the
/// process-global [`EDGE_CLONES`] counter, and cargo runs `#[test]` fns on
/// parallel threads by default.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn serialize_test() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Global count of edge-attribute clones.  Edge attributes are cloned in
/// exactly two places: once per local edge when a cluster is built (the edge
/// tables), and once per materialised triplet on the hot path.  They appear
/// in no message, cache or sync structure, which makes them a precise probe
/// for triplet copying.
static EDGE_CLONES: AtomicU64 = AtomicU64::new(0);

#[derive(Debug, PartialEq)]
struct CountingEdge(f64);

impl Clone for CountingEdge {
    fn clone(&self) -> Self {
        EDGE_CLONES.fetch_add(1, Ordering::Relaxed);
        CountingEdge(self.0)
    }
}

/// Bellman-Ford-style relaxation over the counting edge type.
struct Relax;

impl GraphAlgorithm<f64, CountingEdge> for Relax {
    type Msg = f64;
    fn init_vertex(&self, v: VertexId, _d: usize) -> f64 {
        if v == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    }
    fn msg_gen(&self, t: &Triplet<f64, CountingEdge>, _i: usize) -> Vec<AddressedMessage<f64>> {
        if t.src_attr.is_finite() {
            vec![AddressedMessage::new(t.dst, t.src_attr + t.edge_attr.0)]
        } else {
            Vec::new()
        }
    }
    fn msg_merge(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
    fn msg_apply(&self, _v: VertexId, cur: &f64, msg: &f64, _i: usize) -> Option<f64> {
        (*msg + 1e-12 < *cur).then_some(*msg)
    }
    fn initial_active(&self, _n: usize) -> Option<Vec<VertexId>> {
        Some(vec![0])
    }
    fn name(&self) -> &'static str {
        "relax-counting"
    }
}

/// A deterministic pseudo-random graph over the counting edge type
/// (irregular enough that the vertex-cut partitioner spreads edges over
/// every node).
fn counting_graph() -> PropertyGraph<f64, CountingEdge> {
    let n: u64 = 256;
    let list: EdgeList<CountingEdge> = (0..4_096u64)
        .map(|i| {
            let h = gx_plug::ipc::key::splitmix64(i);
            let src = (h % n) as u32;
            let dst = ((h >> 16) % n) as u32;
            (src, dst, CountingEdge(1.0 + (h % 5) as f64))
        })
        .collect();
    PropertyGraph::from_edge_list(list, f64::INFINITY).unwrap()
}

fn deploy(
    graph: &PropertyGraph<f64, CountingEdge>,
    mode: ExecutionMode,
) -> Session<'_, f64, CountingEdge> {
    let parts = 2;
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(graph, parts)
        .unwrap();
    SessionBuilder::new(graph)
        .partitioned_by(partitioning)
        .devices(
            (0..parts)
                .map(|node| {
                    vec![
                        gpu_v100(format!("n{node}-gpu")),
                        cpu_xeon_20c(format!("n{node}-cpu")),
                    ]
                })
                .collect(),
        )
        .config(MiddlewareConfig::default().with_execution(mode))
        .dataset("counting")
        .max_iterations(200)
        .build()
        .unwrap()
}

/// One steady-state run in `mode`: deploy + warm-up run first (cluster build
/// clones each edge into the node tables once — deployment, not hot path),
/// then measure the edge clones of a second run exactly.
fn measured_run(mode: ExecutionMode) -> (u64, u64, Vec<u64>) {
    let graph = counting_graph();
    let mut session = deploy(&graph, mode);
    session.run(&Relax).unwrap();
    let before = EDGE_CLONES.load(Ordering::SeqCst);
    let outcome = session.run(&Relax).unwrap();
    let clones = EDGE_CLONES.load(Ordering::SeqCst) - before;
    let triplets = outcome.report.total_triplets() as u64;
    let bits = outcome.values.iter().map(|v| v.to_bits()).collect();
    (clones, triplets, bits)
}

#[test]
fn agents_copy_each_triplet_exactly_once_in_both_execution_modes() {
    let _guard = serialize_test();
    // Run the two modes sequentially: the clone counter is process-global.
    let (serial_clones, serial_triplets, serial_bits) = measured_run(ExecutionMode::Serial);
    let (threaded_clones, threaded_triplets, threaded_bits) = measured_run(ExecutionMode::Threaded);

    assert!(serial_triplets > 0, "the workload must not be trivial");
    // THE zero-copy property: every triplet the daemons processed cloned its
    // edge attribute exactly once — at materialisation into the reusable
    // buffer.  The owned-copy pipeline of the seed cloned each triplet twice
    // more (capacity-share split + block packaging) and would report 3x.
    assert_eq!(
        serial_clones, serial_triplets,
        "serial path must clone one edge attribute per processed triplet"
    );
    assert_eq!(
        threaded_clones, threaded_triplets,
        "threaded path must clone one edge attribute per processed triplet"
    );

    // The borrowed-block path stays bit-identical across execution modes.
    assert_eq!(serial_triplets, threaded_triplets);
    assert_eq!(serial_bits, threaded_bits);
}

#[test]
fn reused_sessions_reach_zero_arena_reallocations_at_steady_state() {
    let _guard = serialize_test();
    let graph = counting_graph();
    let mut session = deploy(&graph, ExecutionMode::Threaded);

    // Warm-up: the first run grows each node's arena to its peak workload.
    session.run(&Relax).unwrap();
    let warm = session.triplet_buffer_stats();
    assert!(!warm.is_empty());
    assert!(warm.iter().all(|s| s.fills > 0));

    // Steady state: further runs of the same job refill the warm arenas
    // without a single reallocation.
    for _ in 0..3 {
        session.run(&Relax).unwrap();
    }
    let steady = session.triplet_buffer_stats();
    for (node, (w, s)) in warm.iter().zip(&steady).enumerate() {
        assert!(
            s.fills > w.fills,
            "node {node}: steady-state runs must have refilled the arena"
        );
        assert_eq!(
            s.reallocations, w.reallocations,
            "node {node}: steady-state refills must not touch the allocator"
        );
    }
}
