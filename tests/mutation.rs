//! Live-mutation determinism: mutating a deployed service in place must be
//! indistinguishable — bit for bit — from tearing everything down and
//! rebuilding from scratch over the mutated graph.
//!
//! Two arms, both driven through [`GraphService`] in both execution modes:
//!
//! * **PageRank** (always-active, not incremental): after a mutation the
//!   worker session's cluster absorbs the delta in place and the next run
//!   does a full re-initialisation.  Values *and* iteration counts must
//!   equal a fresh service built over the mutated graph with the same
//!   extended partitioning.
//! * **SSSP** (opted into incremental recompute): an insert-only batch seeds
//!   the next run from the dirty frontier on top of the previous converged
//!   distances.  The warm start is an upper bound, and the strict-improvement
//!   apply drives it to the same fixed point, so *values* must be
//!   bit-identical to the from-scratch rebuild (iteration counts may
//!   legitimately differ — that difference is the speedup).
//!
//! A third arm covers the lazy-deployment path: a mutation applied before a
//! service's first job must be replayed into the worker's freshly built
//! cluster before it runs.

use gx_plug::prelude::*;
use std::sync::Arc;

fn mixed_devices(nodes: usize) -> Vec<Vec<DeviceSpec>> {
    (0..nodes)
        .map(|n| {
            vec![
                gpu_v100(format!("n{n}-gpu")),
                cpu_xeon_20c(format!("n{n}-cpu")),
            ]
        })
        .collect()
}

fn service_over<V>(
    graph: &Arc<PropertyGraph<V, f64>>,
    partitioning: &Partitioning,
    mode: ExecutionMode,
) -> GraphService<V, f64>
where
    V: Clone + PartialEq + Send + Sync + std::fmt::Debug + 'static,
{
    GraphService::builder(Arc::clone(graph))
        .partitioned_by(partitioning.clone())
        .devices(mixed_devices(partitioning.num_parts()))
        .config(MiddlewareConfig::default().with_execution(mode))
        .dataset("rmat")
        .max_iterations(100)
        .worker_sessions(1)
        .build()
        .unwrap()
}

/// Applies `delta` to clones of the master graph and partitioning — the
/// "rebuild from scratch" side of every equivalence check.
fn rebuild<V: Clone + PartialEq>(
    graph: &PropertyGraph<V, f64>,
    partitioning: &Partitioning,
    delta: &ResolvedMutation<V, f64>,
) -> (Arc<PropertyGraph<V, f64>>, Partitioning) {
    let mut mutated = graph.clone();
    mutated.apply_mutations(delta);
    let mut extended = partitioning.clone();
    extended.apply_mutations(delta);
    (Arc::new(mutated), extended)
}

#[test]
fn mutated_service_pagerank_is_bit_identical_to_rebuilt_service() {
    let list = Rmat::new(9, 8.0).generate(31);
    let default = RankValue {
        rank: 1.0,
        out_degree: 0,
    };
    let graph = Arc::new(PropertyGraph::from_edge_list(list, default).unwrap());
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 2)
        .unwrap();
    let new_vertex = graph.num_vertices() as VertexId;
    let batch = MutationBatch::new()
        .add_vertex(default)
        .add_edge(0, new_vertex, 1.0)
        .add_edge(new_vertex, 5, 1.0)
        .remove_edge(3)
        .remove_edge(17);
    let rank_bits = |values: &[RankValue]| -> Vec<(u64, u32)> {
        values
            .iter()
            .map(|v| (v.rank.to_bits(), v.out_degree))
            .collect()
    };

    for mode in [ExecutionMode::Serial, ExecutionMode::Threaded] {
        // Warm the deployed service with a run, then mutate it in place.
        let service = service_over(&graph, &partitioning, mode);
        service.submit(PageRank::new(20)).unwrap().wait().unwrap();
        let delta = service.apply_mutations(&batch).unwrap();
        let mutated = service.submit(PageRank::new(20)).unwrap().wait().unwrap();

        // The rebuilt-from-scratch service over the mutated graph.
        let (mutated_graph, extended) = rebuild(&graph, &partitioning, &delta);
        let fresh = service_over(&mutated_graph, &extended, mode);
        let reference = fresh.submit(PageRank::new(20)).unwrap().wait().unwrap();

        assert_eq!(
            mutated.report.num_iterations(),
            reference.report.num_iterations(),
            "iteration counts diverged in {mode:?}"
        );
        assert_eq!(
            rank_bits(&mutated.values),
            rank_bits(&reference.values),
            "in-place mutation diverged from rebuild in {mode:?}"
        );
        assert_eq!(mutated.values.len(), graph.num_vertices() + 1);
    }
}

#[test]
fn mutated_service_sssp_incremental_recompute_matches_rebuilt_service() {
    let list = Rmat::new(9, 8.0).generate(47);
    let graph = Arc::new(PropertyGraph::from_edge_list(list, Vec::new()).unwrap());
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 2)
        .unwrap();
    // Insert-only: the warm distances stay valid upper bounds, so the
    // incremental path is sound and taken.
    let new_vertex = graph.num_vertices() as VertexId;
    let batch = MutationBatch::new()
        .add_vertex(Vec::new())
        .add_edge(0, new_vertex, 0.5)
        .add_edge(new_vertex, 9, 0.25)
        .add_edge(2, 7, 0.125);
    let sssp_bits = |values: &[Vec<f64>]| -> Vec<Vec<u64>> {
        values
            .iter()
            .map(|d| d.iter().map(|x| x.to_bits()).collect())
            .collect()
    };

    for mode in [ExecutionMode::Serial, ExecutionMode::Threaded] {
        let algorithm = MultiSourceSssp::paper_default();
        let service = service_over(&graph, &partitioning, mode);
        // The fill run converges and leaves warm per-vertex distances in the
        // worker session.
        let warm = service.submit(algorithm.clone()).unwrap().wait().unwrap();
        assert!(warm.report.converged);
        let delta = service.apply_mutations(&batch).unwrap();
        // The duplicate submission is a version miss; the rerun seeds only
        // the dirty frontier on top of the warm distances.
        let incremental = service.submit(algorithm.clone()).unwrap().wait().unwrap();
        assert!(incremental.report.converged);

        let (mutated_graph, extended) = rebuild(&graph, &partitioning, &delta);
        let fresh = service_over(&mutated_graph, &extended, mode);
        let reference = fresh.submit(algorithm.clone()).unwrap().wait().unwrap();

        assert_eq!(
            sssp_bits(&incremental.values),
            sssp_bits(&reference.values),
            "incremental recompute diverged from rebuild in {mode:?}"
        );
        assert_eq!(incremental.values.len(), graph.num_vertices() + 1);
        // The new vertex hangs off source-side structure: it must have been
        // reached (paper sources include vertex 0 → distance 0.5 via the
        // added edge) rather than left at its initialisation value.
        assert!(incremental.values[new_vertex as usize]
            .iter()
            .any(|d| d.is_finite()));
    }
}

#[test]
fn mutations_before_the_first_job_replay_into_the_lazy_deployment() {
    // Workers build their clusters lazily on the first submission; a batch
    // applied before that must queue and replay into the fresh build.
    let list = Rmat::new(8, 8.0).generate(53);
    let graph = Arc::new(PropertyGraph::from_edge_list(list, Vec::new()).unwrap());
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 2)
        .unwrap();
    let batch = MutationBatch::new()
        .add_vertex(Vec::new())
        .add_edge(1, graph.num_vertices() as VertexId, 2.0)
        .remove_edge(0);

    let service = service_over(&graph, &partitioning, ExecutionMode::Threaded);
    let delta = service.apply_mutations(&batch).unwrap();
    let outcome = service
        .submit(MultiSourceSssp::paper_default())
        .unwrap()
        .wait()
        .unwrap();

    let (mutated_graph, extended) = rebuild(&graph, &partitioning, &delta);
    let fresh = service_over(&mutated_graph, &extended, ExecutionMode::Threaded);
    let reference = fresh
        .submit(MultiSourceSssp::paper_default())
        .unwrap()
        .wait()
        .unwrap();

    assert_eq!(
        outcome.report.num_iterations(),
        reference.report.num_iterations()
    );
    for (a, b) in outcome.values.iter().zip(&reference.values) {
        let bits = |d: &Vec<f64>| d.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(a), bits(b));
    }
}
