//! Serving over the network: boot a `gxplug-server` front end in-process and
//! drive it with a raw `TcpStream` client — submit, poll, scrape `/metrics`.
//!
//! What the wire adds on top of [`GraphService`]: bearer-token tenants with
//! quotas and priority ceilings, a versioned binary frame protocol (plus a
//! curl-friendly text form), and Prometheus-format health.  Results read
//! over the socket are bit-identical to in-process submission — the `f64`
//! payloads travel as exact bit patterns.
//!
//! ```bash
//! cargo run --release --example serving_http
//! ```

use gx_plug::prelude::*;
use gx_plug::server::ws;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One request on a fresh connection; returns `(status, body)`.
fn http(addr: SocketAddr, head: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let split = raw.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
    let status = std::str::from_utf8(&raw[..split])
        .unwrap()
        .split(' ')
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    (status, raw[split + 4..].to_vec())
}

fn frame_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    token: &str,
    frame: Option<&Frame>,
) -> (u16, Vec<u8>) {
    let body = frame.map(gx_plug::ipc::wire::encode).unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\
         Authorization: Bearer {token}\r\n\
         Content-Type: application/x-gxplug-frame\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    http(addr, &head, &body)
}

fn main() {
    // The same deployment `gxplug-serve` runs: rmat10 on two simulated
    // nodes, pooled workers, a bounded queue that rejects when full.
    println!("deploying the serving graph...");
    let service = standard_service(10, 42, 2, 32);
    let tenants = TenantRegistry::new()
        .register(
            "tok-interactive",
            Tenant::new("interactive").with_priority_ceiling(JobPriority::High),
        )
        .register(
            "tok-batch",
            Tenant::new("batch")
                .with_priority_ceiling(JobPriority::Low)
                .with_quota(TenantQuota {
                    max_in_flight: 1,
                    queue_share: 0.05,
                }),
        );
    let server = Server::serve(
        service,
        standard_registry(),
        tenants,
        ServerConfig::default(),
    )
    .expect("bind an ephemeral port");
    let addr = server.local_addr();
    println!("serving on http://{addr}\n");

    // --- Submit PageRank as a binary frame -------------------------------
    let submit = Frame::Submit {
        spec: JobSpec::new("pagerank")
            .with_f64("damping", 0.85)
            .with_u64("iterations", 20),
        options: WireJobOptions::default(),
    };
    let (status, body) = frame_request(addr, "POST", "/v1/jobs", "tok-interactive", Some(&submit));
    let (frame, _) = gx_plug::ipc::wire::decode(&body).unwrap();
    let Frame::Accepted { job } = frame else {
        panic!("submit answered {status}: {frame:?}")
    };
    println!("POST /v1/jobs                -> {status} (job {job})");

    // --- Poll until the result lands -------------------------------------
    let result = loop {
        let (status, body) = frame_request(
            addr,
            "GET",
            &format!("/v1/jobs/{job}"),
            "tok-interactive",
            None,
        );
        let (frame, _) = gx_plug::ipc::wire::decode(&body).unwrap();
        match frame {
            Frame::State { state, .. } => {
                println!("GET  /v1/jobs/{job}           -> {status} ({state})");
                std::thread::sleep(Duration::from_millis(20));
            }
            Frame::Result(result) => {
                println!(
                    "GET  /v1/jobs/{job}           -> {status} (result: {} values, {} iterations, converged={})",
                    result.values.len(),
                    result.iterations,
                    result.converged
                );
                break result;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    };

    // --- The determinism contract ----------------------------------------
    let direct = server
        .service()
        .submit(ServeRank {
            damping: 0.85,
            iterations: 20,
        })
        .expect("direct submit")
        .wait()
        .expect("direct run");
    let identical = direct
        .values
        .iter()
        .zip(&result.values)
        .all(|(a, b)| a.rank.to_bits() == b.to_bits());
    println!("socket result bit-identical to in-process submission: {identical}");
    assert!(identical);

    // --- An over-quota tenant gets a typed 429 ---------------------------
    let slow = Frame::Submit {
        spec: JobSpec::new("pagerank").with_u64("iterations", 120),
        options: WireJobOptions {
            cache: 1, // bypass
            ..WireJobOptions::default()
        },
    };
    let (first, _) = frame_request(addr, "POST", "/v1/jobs", "tok-batch", Some(&slow));
    let (second, body) = frame_request(addr, "POST", "/v1/jobs", "tok-batch", Some(&slow));
    let (frame, _) = gx_plug::ipc::wire::decode(&body).unwrap();
    println!("\nbatch tenant (quota: 1 in flight): first submit {first}, second {second}");
    if let Frame::Error { error, .. } = frame {
        println!("  the 429 is typed: {error}");
    }

    // --- Scrape /metrics --------------------------------------------------
    let (status, body) = http(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
        &[],
    );
    let text = String::from_utf8(body).unwrap();
    println!("\nGET /metrics -> {status}; a few samples:");
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.starts_with("gxplug_jobs_")
                || l.starts_with("gxplug_tenant_jobs_rejected")
                || l.starts_with("gxplug_run_wall_seconds{")
        })
        .take(10)
    {
        println!("  {line}");
    }

    // A WebSocket client would connect to /v1/stream with the usual
    // handshake — `ws::accept_key` is the server side of it:
    println!(
        "\nWS handshake (RFC 6455 vector): {}",
        ws::accept_key("dGhlIHNhbXBsZSBub25jZQ==")
    );

    server.shutdown();
    println!("server drained and stopped.");
}
