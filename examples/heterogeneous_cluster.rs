//! Heterogeneous cluster with workload balancing: two distributed nodes with
//! very different accelerator budgets (1 GPU + 1 CPU vs 3 GPUs + 1 CPU) run
//! label propagation, first with the upper system's default even partitioning
//! and then with the data placement prescribed by Lemma 2 — the scenario of
//! the paper's Fig. 12a.
//!
//! ```bash
//! cargo run --release --example heterogeneous_cluster
//! ```

use gx_plug::prelude::*;

fn devices() -> Vec<Vec<DeviceSpec>> {
    vec![
        vec![gpu_v100("weak-gpu0"), cpu_xeon_20c("weak-cpu0")],
        vec![
            gpu_v100("strong-gpu0"),
            gpu_v100("strong-gpu1"),
            gpu_v100("strong-gpu2"),
            cpu_xeon_20c("strong-cpu0"),
        ],
    ]
}

fn run(graph: &PropertyGraph<u32, f64>, weights: &[f64], label: &str) -> RunReport {
    // The data placement is part of the deployment, so each weighting is its
    // own session.
    let partitioning = WeightedEdgePartitioner::new(weights.to_vec())
        .expect("positive weights")
        .partition(graph, weights.len())
        .expect("partitioning succeeds");
    println!("{label:<14} edge split {:?}", partitioning.edge_counts());
    let mut session = SessionBuilder::new(graph)
        .partitioned_by(partitioning)
        .profile(RuntimeProfile::powergraph())
        .network(NetworkModel::datacenter())
        .devices(devices())
        .dataset("LiveJournal-analogue")
        .max_iterations(15)
        .build()
        .expect("a valid deployment");
    let outcome = session
        .run(&LabelPropagation::paper_default())
        .expect("devices are plugged in");
    println!(
        "{label:<14} total {:>8.1} ms, slowest-node compute {:>8.1} ms",
        outcome.report.total_time().as_millis(),
        outcome.report.compute_time().as_millis()
    );
    outcome.report
}

fn main() {
    let dataset = gx_plug::graph::datasets::find("LiveJournal").expect("catalogue entry");
    let graph = dataset
        .build_graph(Scale::Small, 3, 0u32)
        .expect("generator cannot fail");
    println!(
        "LiveJournal analogue: {} vertices, {} edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Per-node capacity factors 1/c_j, straight from the devices.
    let capacities: Vec<f64> = devices()
        .iter()
        .map(|node| node.iter().map(DeviceSpec::capacity_factor).sum())
        .collect();
    println!(
        "node capacity factors: weak {:.0} items/ms, strong {:.0} items/ms",
        capacities[0], capacities[1]
    );

    // Case 1 of §III-C: fixed hardware, tune the partitioning (Lemma 2).
    let plan = balance_partitioning(&capacities, graph.num_edges()).expect("valid capacities");
    println!(
        "Lemma 2 prescribes data shares {:?} (optimal makespan {:.1} ms/iteration)\n",
        plan.weights
            .iter()
            .map(|w| format!("{:.0}%", w * 100.0))
            .collect::<Vec<_>>(),
        plan.optimal_makespan.as_millis()
    );

    let even = run(&graph, &[1.0, 1.0], "Not balanced");
    println!();
    let balanced = run(&graph, &plan.weights, "Balanced");

    println!(
        "\nworkload balancing improves the run by {:.2}x",
        even.total_time().as_millis() / balanced.total_time().as_millis()
    );

    // Case 2 of §III-C: fixed data, tune the accelerator allocation (Lemma 3).
    let loads = [250_000usize, 750_000];
    let capacity_plan = balance_capacities(&loads, capacities[1]).expect("valid maximum capacity");
    println!(
        "\nLemma 3: with loads {:?} and a maximum node capacity of {:.0} items/ms,\n\
         the minimal sufficient capacities are {:?} items/ms",
        loads,
        capacities[1],
        capacity_plan
            .capacity_factors
            .iter()
            .map(|f| format!("{f:.0}"))
            .collect::<Vec<_>>()
    );
}
