//! The pipeline-shuffle mechanism in isolation: run the literal agent/daemon
//! protocol of Algorithms 1 and 2 over real threads and shared memory zones,
//! and show how the analytical block-size selection (Lemma 1) picks the sweet
//! spot of the U-shaped cost curve.
//!
//! ```bash
//! cargo run --release --example pipeline_shuffle_demo
//! ```

use gx_plug::core::pipeline::shuffle::run_shuffle_protocol;
use gx_plug::prelude::*;

fn main() {
    // --- 1. The runnable mechanism -------------------------------------
    // 40_000 edge-relaxation work items, split into 2_000-item blocks, pushed
    // through the three-layer pipeline (download → compute → upload) with
    // pointer rotation over three shared zones.
    let blocks: Vec<Vec<u64>> = (0..20)
        .map(|b| ((b * 2_000) as u64..((b + 1) * 2_000) as u64).collect())
        .collect();
    let (computed, stats) = run_shuffle_protocol(blocks, |&x| x.wrapping_mul(31).wrapping_add(7));
    println!(
        "shuffle protocol processed {} blocks / {} items with {} pointer rotations and {} control messages",
        computed.len(),
        stats.items,
        stats.rotations,
        stats.control_messages
    );

    // --- 2. The analytical model ----------------------------------------
    // Derive the pipeline coefficients of a GPU daemon plugged into a
    // PowerGraph-like upper system and sweep the block size.
    let daemon_cost = gx_plug::accel::presets::gpu_v100_cost();
    let profile = RuntimeProfile::powergraph();
    let coefficients = PipelineCoefficients::new(
        profile.per_item_download.as_millis(),
        daemon_cost.per_item_cost().as_millis(),
        profile.per_item_upload.as_millis(),
        daemon_cost.call.as_millis(),
    );
    let d = 120_000usize; // one node-iteration worth of triplets
    println!("\nblock-size sweep for d = {d} triplets (times in simulated ms):");
    println!(
        "{:>10} {:>10} {:>14} {:>14}",
        "blocks s", "size b", "Eq.2 estimate", "executed"
    );
    for s in [1usize, 4, 16, 64, 256, 1_024, 4_096] {
        let b = d.div_ceil(s);
        println!(
            "{:>10} {:>10} {:>14.2} {:>14.2}",
            s,
            b,
            coefficients.estimate_total(d, b),
            coefficients.simulate_schedule(d, b)
        );
    }
    let choice = coefficients.optimal_block_size(d);
    println!(
        "\nLemma 1 picks b = {} ({} blocks, case {:?}), estimated {:.2} ms — \
         {:.0}% faster than the unpipelined 5-step workflow ({:.2} ms)",
        choice.block_size,
        choice.num_blocks,
        choice.case,
        choice.estimated_total,
        (1.0 - choice.estimated_total / coefficients.estimate_unpipelined(d)) * 100.0,
        coefficients.estimate_unpipelined(d)
    );
}
