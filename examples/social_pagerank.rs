//! Social-network influence ranking: PageRank over a Twitter-like power-law
//! graph on a 6-node cluster, comparing GraphX and PowerGraph upper systems
//! with and without GPU acceleration — the workload the paper's introduction
//! motivates ("big graph analytics … social networks").
//!
//! Each upper system is deployed **once** as a [`Session`]; the native
//! baseline and the accelerated run are both submitted to the same deployed
//! cluster, which is exactly the apples-to-apples comparison the middleware
//! is designed for.
//!
//! ```bash
//! cargo run --release --example social_pagerank
//! ```

use gx_plug::prelude::*;

fn deploy<'g>(
    graph: &'g PropertyGraph<RankValue, f64>,
    partitioning: &Partitioning,
    profile: RuntimeProfile,
    gpus_per_node: usize,
) -> Session<'g, RankValue, f64> {
    let devices: Vec<Vec<DeviceSpec>> = (0..partitioning.num_parts())
        .map(|n| {
            (0..gpus_per_node)
                .map(|g| gpu_v100(format!("node{n}-gpu{g}")))
                .collect()
        })
        .collect();
    SessionBuilder::new(graph)
        .partitioned_by(partitioning.clone())
        .profile(profile)
        .network(NetworkModel::datacenter())
        .devices(devices)
        .dataset("Twitter-analogue")
        .max_iterations(20)
        .build()
        .expect("a valid deployment")
}

fn print_report(label: &str, report: &RunReport) {
    println!(
        "{label:<18} {:>8.1} ms  ({} iterations, sync {:>7.1} ms, middleware {:>5.1}%)",
        report.total_time().as_millis(),
        report.num_iterations(),
        report.sync_time().as_millis(),
        report.middleware_ratio() * 100.0
    );
}

fn main() {
    let dataset = gx_plug::graph::datasets::find("Twitter").expect("catalogue entry");
    let graph = dataset
        .build_graph(
            Scale::Small,
            7,
            RankValue {
                rank: 1.0,
                out_degree: 0,
            },
        )
        .expect("generator cannot fail");
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 6)
        .expect("partitioning succeeds");
    println!(
        "Twitter analogue: {} vertices, {} edges over {} nodes\n",
        graph.num_vertices(),
        graph.num_edges(),
        partitioning.num_parts()
    );

    let algorithm = PageRank::new(20);

    // One deployment per upper system; two runs (native + accelerated) each.
    let mut graphx_session = deploy(&graph, &partitioning, RuntimeProfile::graphx(), 2);
    let graphx = graphx_session.run_native(&algorithm).report;
    print_report("GraphX", &graphx);
    let graphx_gpu = graphx_session
        .run(&algorithm)
        .expect("devices are plugged in")
        .report;
    print_report("GraphX+GPU", &graphx_gpu);

    let mut powergraph_session = deploy(&graph, &partitioning, RuntimeProfile::powergraph(), 2);
    let powergraph = powergraph_session.run_native(&algorithm).report;
    print_report("PowerGraph", &powergraph);
    let powergraph_gpu = powergraph_session
        .run(&algorithm)
        .expect("devices are plugged in")
        .report;
    print_report("PowerGraph+GPU", &powergraph_gpu);

    println!(
        "\nGPU speedup: GraphX {:.1}x, PowerGraph {:.1}x (amortised, excluding device init)",
        graphx.total_time().as_millis() / (graphx_gpu.total_time() - graphx_gpu.setup).as_millis(),
        powergraph.total_time().as_millis()
            / (powergraph_gpu.total_time() - powergraph_gpu.setup).as_millis(),
    );

    // Serving on the same deployment: the top-influencer query is just one
    // more run on the already-plugged PowerGraph session (setup == 0).
    let outcome = powergraph_session
        .run(&PageRank::new(20))
        .expect("devices are plugged in");
    assert!(outcome.report.setup.is_zero());
    let mut ranked: Vec<(VertexId, f64)> = outcome
        .values
        .iter()
        .enumerate()
        .map(|(v, value)| (v as VertexId, value.rank))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-5 vertices by PageRank:");
    for (vertex, rank) in ranked.into_iter().take(5) {
        println!("  vertex {vertex:>6}  rank {rank:.3}");
    }
}
