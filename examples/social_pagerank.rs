//! Social-network influence ranking: PageRank over a Twitter-like power-law
//! graph on a 6-node cluster, comparing GraphX and PowerGraph upper systems
//! with and without GPU acceleration — the workload the paper's introduction
//! motivates ("big graph analytics … social networks").
//!
//! ```bash
//! cargo run --release --example social_pagerank
//! ```

use gx_plug::prelude::*;

fn run(
    label: &str,
    graph: &PropertyGraph<RankValue, f64>,
    partitioning: &Partitioning,
    profile: RuntimeProfile,
    gpus_per_node: usize,
) -> RunReport {
    let algorithm = PageRank::new(20);
    let report = if gpus_per_node == 0 {
        gx_plug::core::run_native(
            graph,
            partitioning.clone(),
            &algorithm,
            profile,
            NetworkModel::datacenter(),
            "Twitter-analogue",
            20,
        )
        .report
    } else {
        let devices: Vec<Vec<Device>> = (0..partitioning.num_parts())
            .map(|n| {
                (0..gpus_per_node)
                    .map(|g| gpu_v100(format!("node{n}-gpu{g}")))
                    .collect()
            })
            .collect();
        gx_plug::core::run_accelerated(
            graph,
            partitioning.clone(),
            &algorithm,
            profile,
            NetworkModel::datacenter(),
            devices,
            MiddlewareConfig::default(),
            "Twitter-analogue",
            20,
        )
        .report
    };
    println!(
        "{label:<18} {:>8.1} ms  ({} iterations, sync {:>7.1} ms, middleware {:>5.1}%)",
        report.total_time().as_millis(),
        report.num_iterations(),
        report.sync_time().as_millis(),
        report.middleware_ratio() * 100.0
    );
    report
}

fn main() {
    let dataset = gx_plug::graph::datasets::find("Twitter").expect("catalogue entry");
    let graph = dataset
        .build_graph(
            Scale::Small,
            7,
            RankValue {
                rank: 1.0,
                out_degree: 0,
            },
        )
        .expect("generator cannot fail");
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, 6)
        .expect("partitioning succeeds");
    println!(
        "Twitter analogue: {} vertices, {} edges over {} nodes\n",
        graph.num_vertices(),
        graph.num_edges(),
        partitioning.num_parts()
    );

    let graphx = run("GraphX", &graph, &partitioning, RuntimeProfile::graphx(), 0);
    let graphx_gpu = run(
        "GraphX+GPU",
        &graph,
        &partitioning,
        RuntimeProfile::graphx(),
        2,
    );
    let powergraph = run(
        "PowerGraph",
        &graph,
        &partitioning,
        RuntimeProfile::powergraph(),
        0,
    );
    let powergraph_gpu = run(
        "PowerGraph+GPU",
        &graph,
        &partitioning,
        RuntimeProfile::powergraph(),
        2,
    );

    println!(
        "\nGPU speedup: GraphX {:.1}x, PowerGraph {:.1}x (amortised, excluding device init)",
        graphx.total_time().as_millis() / (graphx_gpu.total_time() - graphx_gpu.setup).as_millis(),
        powergraph.total_time().as_millis()
            / (powergraph_gpu.total_time() - powergraph_gpu.setup).as_millis(),
    );

    // Show the top influencers found by the accelerated run (results are the
    // same regardless of the execution path).
    let outcome = gx_plug::core::run_accelerated(
        &graph,
        partitioning,
        &PageRank::new(20),
        RuntimeProfile::powergraph(),
        NetworkModel::datacenter(),
        (0..6).map(|n| vec![gpu_v100(format!("n{n}"))]).collect(),
        MiddlewareConfig::default(),
        "Twitter-analogue",
        20,
    );
    let mut ranked: Vec<(VertexId, f64)> = outcome
        .values
        .iter()
        .enumerate()
        .map(|(v, value)| (v as VertexId, value.rank))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-5 vertices by PageRank:");
    for (vertex, rank) in ranked.into_iter().take(5) {
        println!("  vertex {vertex:>6}  rank {rank:.3}");
    }
}
