//! Road-network routing: multi-source shortest paths over a WRN-like road
//! graph, demonstrating the inter-iteration optimisations (synchronization
//! caching and skipping) that matter most on high-diameter graphs where the
//! frontier stays small for hundreds of iterations.
//!
//! The whole ablation runs on **one deployed session**: the cluster is built
//! and the GPUs are initialised once, and [`Session::set_config`] switches
//! the middleware configuration between runs.  Times are compared with
//! `steady_time()` (setup excluded) since only the first run pays the
//! deployment.
//!
//! ```bash
//! cargo run --release --example road_network_sssp
//! ```

use gx_plug::prelude::*;

fn run_with(
    session: &mut Session<'_, Vec<f64>, f64>,
    label: &str,
    config: MiddlewareConfig,
) -> RunOutcome<Vec<f64>> {
    let num_vertices = session.partitioning().num_vertices();
    let algorithm = MultiSourceSssp::new(vec![0, 17, 4_002 % num_vertices as VertexId]);
    session.set_config(config);
    let outcome = session.run(&algorithm).expect("devices are plugged in");
    println!(
        "{label:<28} {:>9.1} ms  ({} iterations, {} skipped syncs, {} entities uploaded)",
        outcome.report.steady_time().as_millis(),
        outcome.report.num_iterations(),
        outcome.report.skipped_iterations(),
        outcome
            .agent_stats
            .iter()
            .map(|s| s.uploaded_entities)
            .sum::<u64>(),
    );
    outcome
}

fn main() {
    let dataset = gx_plug::graph::datasets::find("WRN").expect("catalogue entry");
    let graph = dataset
        .build_graph(Scale::Small, 11, Vec::new())
        .expect("generator cannot fail");
    let partitioning = RangePartitioner
        .partition(&graph, 4)
        .expect("partitioning succeeds");
    println!(
        "road network analogue: {} vertices, {} edges, 4 nodes\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    let devices: Vec<Vec<DeviceSpec>> = (0..partitioning.num_parts())
        .map(|n| vec![gpu_v100(format!("node{n}-gpu0"))])
        .collect();
    let mut session = SessionBuilder::new(&graph)
        .partitioned_by(partitioning)
        .profile(RuntimeProfile::powergraph())
        .network(NetworkModel::datacenter())
        .devices(devices)
        .dataset("WRN-analogue")
        .max_iterations(5_000)
        .build()
        .expect("a valid deployment");

    let naive = run_with(
        &mut session,
        "no inter-iteration opts",
        MiddlewareConfig::default()
            .with_caching(false)
            .with_skipping(false),
    );
    let cached = run_with(
        &mut session,
        "caching only",
        MiddlewareConfig::default().with_skipping(false),
    );
    let full = run_with(
        &mut session,
        "caching + skipping",
        MiddlewareConfig::default(),
    );

    println!(
        "\ninter-iteration optimisations cut the run from {:.1} ms to {:.1} ms ({:.2}x)",
        naive.report.steady_time().as_millis(),
        full.report.steady_time().as_millis(),
        naive.report.steady_time().as_millis() / full.report.steady_time().as_millis()
    );

    // Correctness does not depend on the configuration.
    for (a, b) in naive.values.iter().zip(&full.values) {
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-9,
                "optimisations must not change results"
            );
        }
    }
    let reachable = full.values[full.values.len() - 1]
        .iter()
        .filter(|d| d.is_finite())
        .count();
    println!(
        "last vertex reachable from {} of the {} sources; cached agents avoided {} downloads",
        reachable,
        3,
        cached
            .agent_stats
            .iter()
            .map(|s| s.downloads_avoided)
            .sum::<u64>()
    );
}
