//! Quickstart: plug a GPU into a two-node PowerGraph-like cluster and run
//! multi-source SSSP through the GX-Plug middleware.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use gx_plug::prelude::*;

fn main() {
    // 1. A graph.  Here: the scaled-down synthetic analogue of the paper's
    //    Orkut dataset (power-law social network).  Real edge lists can be
    //    loaded with `gx_plug::graph::io::read_edge_list_file` instead.
    let dataset = gx_plug::graph::datasets::find("Orkut").expect("catalogue entry");
    let graph = dataset
        .build_graph(Scale::Small, 42, Vec::new())
        .expect("generator cannot fail");
    println!(
        "graph: {} vertices, {} edges ({} analogue)",
        graph.num_vertices(),
        graph.num_edges(),
        dataset.name
    );

    // 2. A partitioning across distributed nodes, as the upper system would
    //    produce it (PowerGraph-style greedy vertex cut).
    let num_nodes = 2;
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, num_nodes)
        .expect("partitioning succeeds");
    println!(
        "partitioned into {} nodes, edge balance {:.3}, replication factor {:.3}",
        partitioning.num_parts(),
        partitioning.edge_balance(),
        partitioning.replication_factor()
    );

    // 3. Deploy the middleware once: one V100-class GPU per node, wrapped in
    //    daemons that stay alive for the whole session.  The backend decides
    //    *how* kernels execute behind the same ABI — the cost-model sim
    //    backend by default, or real OS-thread execution with
    //    `--host-parallel`; results are bit-identical either way.
    let backend = if std::env::args().any(|a| a == "--host-parallel") {
        BackendKind::host_parallel()
    } else {
        BackendKind::Sim
    };
    println!("accelerator backend: {backend}");
    let mut session = SessionBuilder::new(&graph)
        .partitioned_by(partitioning)
        .profile(RuntimeProfile::powergraph())
        .network(NetworkModel::datacenter())
        .devices(vec![
            vec![gpu_v100("node0-gpu0")],
            vec![gpu_v100("node1-gpu0")],
        ])
        .backend(backend)
        .dataset(dataset.name)
        .max_iterations(200)
        .build()
        .expect("a valid deployment");

    // 4. Submit the paper's SSSP-BF (4 simultaneous sources) to the session.
    let algorithm = MultiSourceSssp::paper_default();
    let outcome = session.run(&algorithm).expect("devices are plugged in");
    println!(
        "PowerGraph+GPU: {} iterations, total {:.1} ms (setup {:.1} ms), middleware ratio {:.1}%",
        outcome.report.num_iterations(),
        outcome.report.total_time().as_millis(),
        outcome.report.setup.as_millis(),
        outcome.report.middleware_ratio() * 100.0
    );

    // 5. Compare against the native (non-accelerated) run of the very same
    //    algorithm on the very same deployed cluster.
    let native = session.run_native(&algorithm);
    println!(
        "PowerGraph native: {} iterations, total {:.1} ms",
        native.report.num_iterations(),
        native.report.total_time().as_millis()
    );
    println!(
        "acceleration ratio (excluding one-off GPU init): {:.2}x",
        native.report.total_time().as_millis()
            / (outcome.report.total_time() - outcome.report.setup).as_millis()
    );

    // 6. Results are identical: the middleware only changes *where* the
    //    computation runs, not *what* it computes.
    let reachable = outcome.values[0]
        .iter()
        .zip(&native.values[0])
        .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9);
    println!("results match the native run: {reachable}");

    // 7. Sessions amortize the deployment: a second run — here a parameter
    //    sweep with a different source set — reuses the plugged daemons and
    //    pays no setup at all.
    let sweep = session
        .run(&MultiSourceSssp::new(vec![1, 2]))
        .expect("devices are plugged in");
    println!(
        "second run on the same session: {} iterations, setup {:.1} ms (deployment already paid)",
        sweep.report.num_iterations(),
        sweep.report.setup.as_millis()
    );

    // 8. Backends are pluggable on a live session: swap the kernel execution
    //    strategy and re-run — the vertex results do not change by a bit.
    session.set_backend(match backend {
        BackendKind::Sim => BackendKind::host_parallel(),
        BackendKind::HostParallel { .. } => BackendKind::Sim,
    });
    let swapped = session.run(&algorithm).expect("devices are plugged in");
    let identical = swapped
        .values
        .iter()
        .zip(&outcome.values)
        .all(|(a, b)| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
    println!("after swapping the backend, results are bit-identical: {identical}");
}
