//! Multi-tenant serving: mixed PageRank/SSSP traffic through one
//! [`GraphService`], with priority lanes and per-job overrides.
//!
//! One accelerator deployment serves many tenants at once.  PageRank-style
//! and SSSP-style jobs are *different algorithm types*; because both
//! exchange `f64` messages they fit behind one `dyn DynAlgorithm` and share
//! a single scheduler queue — the service never needs to know which is
//! which.  Interactive SSSP tenants submit at high priority; the heavier
//! PageRank batch jobs ride the low-priority lane.
//!
//! ```bash
//! cargo run --release --example serving_multi_tenant
//! ```

use gx_plug::prelude::*;
use std::sync::Arc;

/// The vertex attribute one deployed graph needs to serve both tenant
/// families: the graph is deployed *once*, so its vertex state carries a
/// slot for each algorithm family (exactly like a GraphX property graph
/// whose schema is the union of the queries run against it).
#[derive(Debug, Clone, PartialEq)]
struct TenantVertex {
    /// PageRank state.
    rank: f64,
    /// SSSP state.
    dist: f64,
    /// Static out-degree, pre-computed for PageRank contributions.
    degree: u32,
}

/// PageRank over [`TenantVertex`] (messages: summed `f64` contributions).
struct RankJob {
    damping: f64,
    iterations: usize,
}

impl GraphAlgorithm<TenantVertex, f64> for RankJob {
    type Msg = f64;

    fn init_vertex(&self, _v: VertexId, out_degree: usize) -> TenantVertex {
        TenantVertex {
            rank: 1.0,
            dist: f64::INFINITY,
            degree: out_degree as u32,
        }
    }

    fn msg_gen(&self, t: &Triplet<TenantVertex, f64>, _i: usize) -> Vec<AddressedMessage<f64>> {
        let degree = t.src_attr.degree.max(1) as f64;
        vec![AddressedMessage::new(t.dst, t.src_attr.rank / degree)]
    }

    fn msg_merge(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn msg_apply(
        &self,
        _v: VertexId,
        current: &TenantVertex,
        sum: &f64,
        _i: usize,
    ) -> Option<TenantVertex> {
        Some(TenantVertex {
            rank: (1.0 - self.damping) + self.damping * sum,
            ..current.clone()
        })
    }

    fn max_iterations(&self) -> usize {
        self.iterations
    }

    fn always_active(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "rank-job"
    }
}

/// SSSP over [`TenantVertex`] (messages: min-merged `f64` distances) — a
/// different implementation with the *same* message type, so it shares the
/// erased queue with [`RankJob`].
struct ReachJob {
    source: VertexId,
}

impl GraphAlgorithm<TenantVertex, f64> for ReachJob {
    type Msg = f64;

    fn init_vertex(&self, v: VertexId, out_degree: usize) -> TenantVertex {
        TenantVertex {
            rank: 1.0,
            dist: if v == self.source { 0.0 } else { f64::INFINITY },
            degree: out_degree as u32,
        }
    }

    fn msg_gen(&self, t: &Triplet<TenantVertex, f64>, _i: usize) -> Vec<AddressedMessage<f64>> {
        if t.src_attr.dist.is_finite() {
            vec![AddressedMessage::new(t.dst, t.src_attr.dist + t.edge_attr)]
        } else {
            Vec::new()
        }
    }

    fn msg_merge(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }

    fn msg_apply(
        &self,
        _v: VertexId,
        current: &TenantVertex,
        dist: &f64,
        _i: usize,
    ) -> Option<TenantVertex> {
        (*dist + 1e-12 < current.dist).then(|| TenantVertex {
            dist: *dist,
            ..current.clone()
        })
    }

    fn initial_active(&self, _n: usize) -> Option<Vec<VertexId>> {
        Some(vec![self.source])
    }

    fn name(&self) -> &'static str {
        "reach-job"
    }
}

fn main() {
    // One power-law graph, deployed once, serving every tenant below.
    let list = Rmat::new(12, 8.0).generate(42);
    let default = TenantVertex {
        rank: 1.0,
        dist: f64::INFINITY,
        degree: 0,
    };
    let graph = Arc::new(PropertyGraph::from_edge_list(list, default).expect("valid edge list"));
    let num_nodes = 2;
    let partitioning = GreedyVertexCutPartitioner::default()
        .partition(&graph, num_nodes)
        .expect("partitioning succeeds");

    // The service: two pooled worker deployments (one GPU daemon per node
    // each), a bounded queue, blocking admission.
    let service = GraphService::builder(Arc::clone(&graph))
        .partitioned_by(partitioning)
        .profile(RuntimeProfile::powergraph())
        .devices(vec![
            vec![gpu_v100("node0-gpu0")],
            vec![gpu_v100("node1-gpu0")],
        ])
        .dataset("rmat12")
        .max_iterations(200)
        .worker_sessions(2)
        .queue_depth(32)
        .admission(AdmissionPolicy::Block)
        .build()
        .expect("a valid deployment");
    println!(
        "service up: {} worker sessions, queue depth {}",
        service.worker_sessions(),
        service.queue_depth()
    );

    // The traffic mix, all in one erased queue: interactive SSSP tenants at
    // high priority, PageRank batch analytics at low priority.  Submission
    // is non-blocking; every tenant gets a ticket.
    let mut tickets: Vec<(String, JobTicket<TenantVertex>)> = Vec::new();
    for source in [0u32, 7, 23, 41] {
        let job: Arc<dyn DynAlgorithm<TenantVertex, f64, f64>> = Arc::new(ReachJob { source });
        let ticket = service
            .submit_dyn(job, JobOptions::new().with_priority(JobPriority::High))
            .expect("service is accepting");
        tickets.push((format!("sssp from {source}"), ticket));
    }
    for (damping, iterations) in [(0.85, 20), (0.90, 15)] {
        let job: Arc<dyn DynAlgorithm<TenantVertex, f64, f64>> = Arc::new(RankJob {
            damping,
            iterations,
        });
        let ticket = service
            .submit_dyn(
                job,
                JobOptions::new()
                    .with_priority(JobPriority::Low)
                    // Batch tenants also carry their own iteration budget —
                    // routed through this job only, never mutating the
                    // deployment for the tenants after it.
                    .with_max_iterations(iterations),
            )
            .expect("service is accepting");
        tickets.push((format!("pagerank d={damping}"), ticket));
    }
    println!("submitted {} tenant jobs", tickets.len());

    // Collect: every ticket resolves independently.
    for (label, ticket) in tickets {
        let outcome = ticket.wait().expect("job succeeds");
        println!(
            "  {label:<16} -> {} iterations, converged={}, total {:?}",
            outcome.report.num_iterations(),
            outcome.report.converged,
            outcome.report.total_time(),
        );
    }

    // The books: queue wait vs run wall separates saturation from job cost.
    let stats = service.stats();
    println!(
        "served {} jobs ({} completed) on {} workers",
        stats.submitted, stats.completed, stats.worker_sessions
    );
    if let (Some(p50), Some(p95)) = (
        stats.queue_wait_percentile(0.5),
        stats.queue_wait_percentile(0.95),
    ) {
        println!("queue wait p50 {p50:?}, p95 {p95:?}");
    }

    // Drain-shutdown: deterministic teardown, every worker session closed.
    service.shutdown();
    println!("service drained and shut down");
}
